// Package anonymize implements CryptoPAn-style prefix-preserving IP
// address anonymization (Xu et al., ICNP'02), the conventional
// redaction technique the paper contrasts with DP synthesis (§2.1):
// two addresses sharing a k-bit prefix map to anonymized addresses
// sharing a k-bit prefix, which preserves subnet structure — and is
// exactly why it remains vulnerable to linkage attacks when an
// institution's prefix carries sensitive activity.
package anonymize

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// CryptoPAn is a deterministic prefix-preserving anonymizer keyed by
// a 32-byte secret (16 bytes AES key, 16 bytes padding block).
type CryptoPAn struct {
	block cipher.Block
	pad   [16]byte
}

// New creates a CryptoPAn anonymizer from a 32-byte key.
func New(key []byte) (*CryptoPAn, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("anonymize: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	c := &CryptoPAn{block: block}
	// The padding block is itself encrypted, as in the reference
	// implementation.
	var padIn [16]byte
	copy(padIn[:], key[16:])
	c.block.Encrypt(c.pad[:], padIn[:])
	return c, nil
}

// Anonymize maps an IPv4 address (uint32) to its prefix-preserving
// anonymized form: for every bit position i, the i-bit prefix of the
// input determines a pseudorandom flip bit via one AES invocation.
func (c *CryptoPAn) Anonymize(addr uint32) uint32 {
	var result uint32
	var input [16]byte
	for pos := 0; pos < 32; pos++ {
		copy(input[:], c.pad[:])
		// First pos bits from the original address, the rest from
		// the padding.
		if pos > 0 {
			mask := uint32(0xFFFFFFFF) << (32 - pos)
			prefixed := (addr & mask) | (padAsUint32(c.pad) & ^mask)
			putUint32(input[:4], prefixed)
		}
		var out [16]byte
		c.block.Encrypt(out[:], input[:])
		flip := uint32(out[0]) >> 7 // most significant bit
		result |= flip << (31 - pos)
	}
	return result ^ addr
}

// AnonymizeAll maps a column of addresses.
func (c *CryptoPAn) AnonymizeAll(addrs []int64) []int64 {
	out := make([]int64, len(addrs))
	for i, a := range addrs {
		out[i] = int64(c.Anonymize(uint32(a)))
	}
	return out
}

func padAsUint32(pad [16]byte) uint32 {
	return uint32(pad[0])<<24 | uint32(pad[1])<<16 | uint32(pad[2])<<8 | uint32(pad[3])
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// PrefixPreserved verifies the defining property for a pair of
// addresses: the anonymized pair shares exactly as long a common
// prefix as the original pair. Used by tests and as executable
// documentation.
func PrefixPreserved(c *CryptoPAn, a, b uint32) bool {
	return commonPrefixLen(a, b) == commonPrefixLen(c.Anonymize(a), c.Anonymize(b))
}

func commonPrefixLen(a, b uint32) int {
	x := a ^ b
	n := 0
	for n < 32 && x&0x80000000 == 0 {
		x <<= 1
		n++
	}
	return n
}
