package anonymize

import (
	"testing"
	"testing/quick"
)

func testKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("short key must error")
	}
	if _, err := New(testKey()); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	c1, _ := New(testKey())
	c2, _ := New(testKey())
	for _, a := range []uint32{0, 1, 0xC0A80101, 0xFFFFFFFF} {
		if c1.Anonymize(a) != c2.Anonymize(a) {
			t.Fatalf("same key, different mapping for %x", a)
		}
	}
}

func TestInjective(t *testing.T) {
	c, _ := New(testKey())
	seen := make(map[uint32]uint32)
	for a := uint32(0); a < 4096; a++ {
		out := c.Anonymize(a)
		if prev, dup := seen[out]; dup {
			t.Fatalf("collision: %x and %x both map to %x", prev, a, out)
		}
		seen[out] = a
	}
}

func TestPrefixPreservation(t *testing.T) {
	c, _ := New(testKey())
	// Same /24 stays same /24; different /8 diverges at the same bit.
	pairs := [][2]uint32{
		{0xC0A80101, 0xC0A80102}, // same /30-ish
		{0xC0A80101, 0xC0A8FF01}, // same /16
		{0x0A000001, 0xC0000001}, // differ at first bits
	}
	for _, p := range pairs {
		if !PrefixPreserved(c, p[0], p[1]) {
			t.Errorf("prefix not preserved for %x, %x", p[0], p[1])
		}
	}
}

func TestPrefixPreservationProperty(t *testing.T) {
	c, _ := New(testKey())
	f := func(a, b uint32) bool {
		return PrefixPreserved(c, a, b)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAnonymizeAll(t *testing.T) {
	c, _ := New(testKey())
	in := []int64{1, 2, 3}
	out := c.AnonymizeAll(in)
	if len(out) != 3 {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if out[i] == in[i] {
			t.Logf("note: %d maps to itself (possible but rare)", in[i])
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if commonPrefixLen(0, 0) != 32 {
		t.Error("identical addresses share 32 bits")
	}
	if commonPrefixLen(0, 0x80000000) != 0 {
		t.Error("MSB differs → 0")
	}
	if commonPrefixLen(0xC0A80000, 0xC0A80001) != 31 {
		t.Error("want 31")
	}
}
