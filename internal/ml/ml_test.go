package ml

import (
	"math/rand/v2"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
)

// blobs generates two well-separated Gaussian-ish clusters.
func blobs(n int, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed^3))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		cx := float64(c*6 - 3)
		X[i] = []float64{cx + rng.NormFloat64(), cx + rng.NormFloat64()}
		y[i] = c
	}
	return X, y
}

// rings generates a nonlinearly separable dataset (inner vs outer
// ring) that defeats linear models.
func rings(n int, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed^5))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		r := 1.0 + float64(c)*3
		theta := rng.Float64() * 2 * 3.14159
		X[i] = []float64{r * cosApprox(theta), r * sinApprox(theta)}
		y[i] = c
	}
	return X, y
}

func cosApprox(x float64) float64 { return sinApprox(x + 3.14159/2) }

func sinApprox(x float64) float64 {
	// Cheap sine via Taylor on wrapped input; accuracy is irrelevant
	// for generating test rings.
	for x > 3.14159 {
		x -= 2 * 3.14159
	}
	for x < -3.14159 {
		x += 2 * 3.14159
	}
	x2 := x * x
	return x * (1 - x2/6*(1-x2/20*(1-x2/42)))
}

func evalModel(t *testing.T, name string, X [][]float64, y []int, k int) float64 {
	t.Helper()
	cut := len(X) * 3 / 4
	acc, err := EvaluateAccuracy(name, X[:cut], y[:cut], X[cut:], y[cut:], k, 7)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return acc
}

func TestAllModelsLearnBlobs(t *testing.T) {
	X, y := blobs(600, 1)
	for _, name := range Models {
		if acc := evalModel(t, name, X, y, 2); acc < 0.9 {
			t.Errorf("%s blobs accuracy = %v", name, acc)
		}
	}
}

func TestTreesBeatLinearOnRings(t *testing.T) {
	X, y := rings(800, 2)
	dt := evalModel(t, "DT", X, y, 2)
	lr := evalModel(t, "LR", X, y, 2)
	if dt < 0.9 {
		t.Errorf("DT rings accuracy = %v", dt)
	}
	if lr > dt-0.2 {
		t.Errorf("LR (%v) should be far below DT (%v) on rings", lr, dt)
	}
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	n := 900
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 3
		X[i] = []float64{float64(c)*4 + rng.NormFloat64()*0.5, rng.NormFloat64()}
		y[i] = c
	}
	for _, name := range []string{"DT", "RF", "GB", "MLP"} {
		if acc := evalModel(t, name, X, y, 3); acc < 0.9 {
			t.Errorf("%s 3-class accuracy = %v", name, acc)
		}
	}
}

func TestNewClassifierUnknown(t *testing.T) {
	if _, err := NewClassifier("SVM9000", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 0, 1}, []int{1, 1, 1}); a != 2.0/3 {
		t.Errorf("Accuracy = %v", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Errorf("empty accuracy = %v", a)
	}
	if a := Accuracy([]int{1}, []int{1, 2}); a != 0 {
		t.Errorf("mismatched lengths = %v", a)
	}
}

func TestFeaturesFromTable(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Field{Name: "x", Kind: dataset.KindNumeric},
		dataset.Field{Name: "label", Kind: dataset.KindCategorical, Label: true},
	)
	tab := dataset.NewTable(s, 4)
	a := tab.CatCode(1, "a")
	b := tab.CatCode(1, "b")
	tab.AppendRow([]int64{10, a})
	tab.AppendRow([]int64{20, b})
	X, y, k, err := Features(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 2 || len(X[0]) != 1 {
		t.Fatalf("X shape wrong: %v", X)
	}
	if X[1][0] != 20 || y[0] != int(a) || y[1] != int(b) {
		t.Errorf("X/y wrong: %v %v", X, y)
	}
	if k != 2 {
		t.Errorf("k = %d", k)
	}
	// No label → error.
	s2 := dataset.MustSchema(dataset.Field{Name: "x", Kind: dataset.KindNumeric})
	if _, _, _, err := Features(dataset.NewTable(s2, 0)); err == nil {
		t.Error("missing label must error")
	}
}

func TestAlignLabels(t *testing.T) {
	mk := func() *dataset.Table {
		s := dataset.MustSchema(
			dataset.Field{Name: "x", Kind: dataset.KindNumeric},
			dataset.Field{Name: "label", Kind: dataset.KindCategorical, Label: true},
		)
		return dataset.NewTable(s, 2)
	}
	ref := mk()
	ref.AppendRow([]int64{1, ref.CatCode(1, "benign")})
	ref.AppendRow([]int64{2, ref.CatCode(1, "attack")})
	// Other table interns labels in the opposite order.
	other := mk()
	other.AppendRow([]int64{1, other.CatCode(1, "attack")})
	other.AppendRow([]int64{2, other.CatCode(1, "benign")})
	aligned := AlignLabels(ref, other)
	if aligned[0] != 1 || aligned[1] != 0 {
		t.Errorf("aligned = %v", aligned)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{0, 10}, {2, 10}, {4, 10}}
	s := fitStandardizer(X)
	z := s.apply([]float64{2, 10})
	if z[0] != 0 {
		t.Errorf("z[0] = %v, want 0 (mean)", z[0])
	}
	// Zero-variance feature must not produce NaN.
	if z[1] != 0 {
		t.Errorf("z[1] = %v, want 0", z[1])
	}
}

func TestOCSVMFlagsOutliers(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	n := 500
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	oc := NewOCSVM(OCSVMConfig{Nu: 0.1, Epochs: 30, LearningRate: 0.01, Seed: 21})
	if err := oc.Fit(X); err != nil {
		t.Fatal(err)
	}
	ratio := oc.AnomalyRatio(X)
	// Roughly ν of the training data should be outside the region.
	if ratio < 0.01 || ratio > 0.4 {
		t.Errorf("training anomaly ratio = %v, want ≈0.1", ratio)
	}
	// A far-away point must be anomalous.
	if !oc.IsAnomaly([]float64{50, 50}) {
		t.Error("distant point not flagged")
	}
}

func TestDecisionTreePredictEmptyModel(t *testing.T) {
	dt := NewDecisionTree(TreeConfig{})
	if got := dt.Predict([]float64{1}); got != 0 {
		t.Errorf("unfitted predict = %d", got)
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	X, y := blobs(200, 23)
	a := NewRandomForest(ForestConfig{Trees: 5, MaxDepth: 4, Seed: 9})
	b := NewRandomForest(ForestConfig{Trees: 5, MaxDepth: 4, Seed: 9})
	a.Fit(X, y, 2)
	b.Fit(X, y, 2)
	for i := 0; i < 50; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed forests disagree")
		}
	}
}
