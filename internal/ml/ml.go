// Package ml is the from-scratch classical machine-learning substrate
// for the paper's downstream-task evaluation (Figures 3, 7, 8 and
// Tables 1, 2, 6, 7): the five classifiers — decision tree, logistic
// regression, random forest, gradient boosting, and a multi-layer
// perceptron — plus the linear one-class SVM used by the NetML
// anomaly-detection harness, feature encoding from trace tables, and
// evaluation helpers.
package ml

import (
	"fmt"
	"math"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
)

// Classifier is a multiclass classification model.
type Classifier interface {
	// Fit trains on features X and labels y in [0, k).
	Fit(X [][]float64, y []int, k int) error
	// Predict returns the predicted class of one sample.
	Predict(x []float64) int
	// Name returns the paper's short name (DT, LR, RF, GB, MLP).
	Name() string
}

// Models lists the classifier names in the paper's Figure 3 order.
var Models = []string{"DT", "LR", "RF", "GB", "MLP"}

// NewClassifier constructs a classifier by short name with the
// evaluation's default hyperparameters.
func NewClassifier(name string, seed uint64) (Classifier, error) {
	switch name {
	case "DT":
		return NewDecisionTree(TreeConfig{MaxDepth: 8, MinLeaf: 4, Seed: seed}), nil
	case "LR":
		return NewLogistic(LogisticConfig{Epochs: 12, LearningRate: 0.05, L2: 1e-3, Seed: seed}), nil
	case "RF":
		return NewRandomForest(ForestConfig{Trees: 30, MaxDepth: 12, MinLeaf: 2, Seed: seed}), nil
	case "GB":
		return NewGradientBoosting(BoostConfig{Rounds: 20, MaxDepth: 4, LearningRate: 0.2, Seed: seed}), nil
	case "MLP":
		return NewMLP(MLPConfig{Hidden: []int{48}, Epochs: 12, LearningRate: 0.05, Batch: 32, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
}

// Features extracts the design matrix and label vector from a trace
// table: every non-label column becomes one float64 feature (raw
// values; linear models standardize internally) and the label column
// supplies class codes. It returns X, y, and the number of classes.
func Features(t *dataset.Table) ([][]float64, []int, int, error) {
	s := t.Schema()
	li := s.LabelIndex()
	if li < 0 {
		return nil, nil, 0, fmt.Errorf("ml: table has no label field")
	}
	var featCols []int
	for c := range s.Fields {
		if c != li {
			featCols = append(featCols, c)
		}
	}
	n := t.NumRows()
	X := make([][]float64, n)
	y := make([]int, n)
	flat := make([]float64, n*len(featCols))
	for r := 0; r < n; r++ {
		X[r] = flat[r*len(featCols) : (r+1)*len(featCols)]
		for j, c := range featCols {
			X[r][j] = float64(t.Value(r, c))
		}
		y[r] = int(t.Value(r, li))
	}
	k := 0
	if d := t.Dict(li); d != nil {
		k = d.Len()
	}
	for _, v := range y {
		if v+1 > k {
			k = v + 1
		}
	}
	if k < 2 {
		k = 2
	}
	return X, y, k, nil
}

// AlignLabels re-encodes the label codes of a synthesized table so
// they agree with the label dictionary of the reference (raw) table:
// DP synthesis preserves dictionaries, but baselines may emit their
// own coding. Unknown labels map to class 0.
func AlignLabels(ref, t *dataset.Table) []int {
	rli, tli := ref.Schema().LabelIndex(), t.Schema().LabelIndex()
	if rli < 0 || tli < 0 {
		return nil
	}
	refDict := ref.Dict(rli)
	out := make([]int, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		name := t.CatValue(tli, t.Value(r, tli))
		if c, ok := refDict.Lookup(name); ok {
			out[r] = c
		}
	}
	return out
}

// Accuracy returns the fraction of agreeing predictions.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return 0
	}
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

// EvaluateAccuracy trains the named model on (trainX, trainY) and
// returns its accuracy on (testX, testY).
func EvaluateAccuracy(name string, trainX [][]float64, trainY []int, testX [][]float64, testY []int, k int, seed uint64) (float64, error) {
	clf, err := NewClassifier(name, seed)
	if err != nil {
		return 0, err
	}
	if err := clf.Fit(trainX, trainY, k); err != nil {
		return 0, err
	}
	pred := make([]int, len(testX))
	for i, x := range testX {
		pred[i] = clf.Predict(x)
	}
	return Accuracy(testY, pred), nil
}

// standardizer performs z-score normalization fitted on training
// data, used by the linear and neural models.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(X [][]float64) *standardizer {
	if len(X) == 0 {
		return &standardizer{}
	}
	d := len(X[0])
	s := &standardizer{mean: make([]float64, d), std: make([]float64, d)}
	for _, x := range X {
		for j, v := range x {
			s.mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, x := range X {
		for j, v := range x {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-9 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.mean) {
			out[j] = (v - s.mean[j]) / s.std[j]
		}
	}
	return out
}

func (s *standardizer) applyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = s.apply(x)
	}
	return out
}

func argmax(xs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}
