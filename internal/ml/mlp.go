package ml

import (
	"math/rand/v2"

	"github.com/netdpsyn/netdpsyn/internal/nn"
)

// MLPConfig tunes the multi-layer perceptron classifier.
type MLPConfig struct {
	// Hidden lists the hidden-layer widths.
	Hidden []int
	// Epochs is the number of SGD passes.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Batch is the minibatch size.
	Batch int
	// Seed drives initialization and shuffling.
	Seed uint64
}

// MLP is a feed-forward neural classifier (ReLU hidden layers,
// softmax output) trained with minibatch SGD on z-scored features,
// built on the internal nn substrate.
type MLP struct {
	cfg MLPConfig
	net *nn.Net
	std *standardizer
	k   int
}

// NewMLP creates an unfitted model.
func NewMLP(cfg MLPConfig) *MLP {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	return &MLP{cfg: cfg}
}

// Name implements Classifier.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Classifier.
func (m *MLP) Fit(X [][]float64, y []int, k int) error {
	m.k = k
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)
	d := 0
	if len(Z) > 0 {
		d = len(Z[0])
	}
	sizes := append([]int{d}, m.cfg.Hidden...)
	sizes = append(sizes, k)
	net, err := nn.NewNet(sizes, m.cfg.Seed)
	if err != nil {
		return err
	}
	m.net = net
	rng := rand.New(rand.NewPCG(m.cfg.Seed, m.cfg.Seed^0x9e3779b185ebca87))
	order := rng.Perm(len(Z))
	for e := 0; e < m.cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += m.cfg.Batch {
			end := start + m.cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			net.ZeroGrad()
			for _, i := range order[start:end] {
				logits := net.Forward(Z[i])
				_, grad := nn.SoftmaxCrossEntropy(logits, y[i])
				net.Backward(grad)
			}
			net.ScaleGrad(1 / float64(end-start))
			net.Step(m.cfg.LearningRate)
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.net == nil {
		return 0
	}
	return argmax(m.net.Forward(m.std.apply(x)))
}
