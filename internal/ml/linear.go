package ml

import (
	"math/rand/v2"
	"sort"
)

// LogisticConfig tunes the softmax (multinomial logistic) regression.
type LogisticConfig struct {
	// Epochs is the number of SGD passes.
	Epochs int
	// LearningRate is the initial step size (decayed 1/(1+t)).
	LearningRate float64
	// L2 is the ridge regularization strength.
	L2 float64
	// Seed drives shuffling.
	Seed uint64
}

// Logistic is multinomial logistic regression trained with SGD on
// z-scored features. Its deliberate simplicity mirrors the paper's
// observation that LR accuracy is low on these tasks regardless of
// the training data's provenance.
type Logistic struct {
	cfg LogisticConfig
	w   [][]float64 // [class][feature+1], last is bias
	std *standardizer
	k   int
}

// NewLogistic creates an unfitted model.
func NewLogistic(cfg LogisticConfig) *Logistic {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	return &Logistic{cfg: cfg}
}

// Name implements Classifier.
func (l *Logistic) Name() string { return "LR" }

// Fit implements Classifier.
func (l *Logistic) Fit(X [][]float64, y []int, k int) error {
	l.k = k
	l.std = fitStandardizer(X)
	Z := l.std.applyAll(X)
	d := 0
	if len(Z) > 0 {
		d = len(Z[0])
	}
	l.w = make([][]float64, k)
	for c := range l.w {
		l.w[c] = make([]float64, d+1)
	}
	rng := rand.New(rand.NewPCG(l.cfg.Seed, l.cfg.Seed^0x27d4eb2f165667c5))
	order := rng.Perm(len(Z))
	logits := make([]float64, k)
	probs := make([]float64, k)
	step := 0
	for e := 0; e < l.cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			lr := l.cfg.LearningRate / (1 + 0.001*float64(step))
			step++
			l.logits(Z[i], logits)
			softmaxInto(logits, probs)
			for c := 0; c < k; c++ {
				g := probs[c]
				if y[i] == c {
					g -= 1
				}
				wc := l.w[c]
				for j, v := range Z[i] {
					wc[j] -= lr * (g*v + l.cfg.L2*wc[j])
				}
				wc[d] -= lr * g // bias
			}
		}
	}
	return nil
}

func (l *Logistic) logits(z []float64, out []float64) {
	d := len(z)
	for c := 0; c < l.k; c++ {
		s := l.w[c][d]
		for j, v := range z {
			s += l.w[c][j] * v
		}
		out[c] = s
	}
}

// Predict implements Classifier.
func (l *Logistic) Predict(x []float64) int {
	z := l.std.apply(x)
	logits := make([]float64, l.k)
	l.logits(z, logits)
	return argmax(logits)
}

// OCSVMConfig tunes the linear one-class SVM.
type OCSVMConfig struct {
	// Nu bounds the fraction of training points treated as outliers.
	Nu float64
	// Epochs is the number of SGD passes.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Seed drives shuffling.
	Seed uint64
}

// OCSVM is Schölkopf's ν-one-class SVM with a linear kernel, trained
// by SGD on the objective ½‖w‖² − ρ + (1/νn)·Σ max(0, ρ − ⟨w, x⟩).
// It is the default detector of the NetML harness (Figure 4).
type OCSVM struct {
	cfg OCSVMConfig
	w   []float64
	rho float64
	std *standardizer
}

// NewOCSVM creates an unfitted detector.
func NewOCSVM(cfg OCSVMConfig) *OCSVM {
	if cfg.Nu <= 0 || cfg.Nu > 1 {
		cfg.Nu = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	return &OCSVM{cfg: cfg}
}

// Fit trains the boundary on (unlabeled) samples: SGD on w over the
// ν-OCSVM objective, then ρ set exactly to the ν-quantile of the
// training scores — for a fixed w that is the optimizer of the ρ
// terms, and it guarantees the ν-property (≈ν of the training data
// falls outside the region) that the downstream anomaly-ratio
// comparisons rely on.
func (o *OCSVM) Fit(X [][]float64) error {
	o.std = fitStandardizer(X)
	Z := o.std.applyAll(X)
	d := 0
	if len(Z) > 0 {
		d = len(Z[0])
	}
	o.w = make([]float64, d)
	o.rho = 0
	rng := rand.New(rand.NewPCG(o.cfg.Seed, o.cfg.Seed^0x85ebca77c2b2ae63))
	n := float64(len(Z))
	order := rng.Perm(len(Z))
	for e := 0; e < o.cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			lr := o.cfg.LearningRate / (1 + 0.01*float64(e))
			score := o.dot(Z[i])
			// Subgradients of the ν-OCSVM objective.
			inMargin := 0.0
			if score < o.rho {
				inMargin = 1
			}
			for j := range o.w {
				g := o.w[j]/n - inMargin*Z[i][j]/(o.cfg.Nu*n)
				o.w[j] -= lr * g * n // scale back to per-sample step
			}
			gRho := -1 + inMargin/o.cfg.Nu
			o.rho -= lr * gRho
		}
	}
	// Closed-form ρ for the learned w.
	scores := make([]float64, len(Z))
	for i, z := range Z {
		scores[i] = o.dot(z)
	}
	sort.Float64s(scores)
	idx := int(o.cfg.Nu * float64(len(scores)))
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	if len(scores) > 0 {
		o.rho = scores[idx]
	}
	return nil
}

func (o *OCSVM) dot(z []float64) float64 {
	var s float64
	for j, v := range z {
		if j < len(o.w) {
			s += o.w[j] * v
		}
	}
	return s
}

// Score returns the decision value ⟨w, x⟩ − ρ (negative = anomalous).
func (o *OCSVM) Score(x []float64) float64 {
	return o.dot(o.std.apply(x)) - o.rho
}

// IsAnomaly reports whether the sample falls outside the learned
// region.
func (o *OCSVM) IsAnomaly(x []float64) bool { return o.Score(x) < 0 }

// AnomalyRatio returns the fraction of samples flagged anomalous.
func (o *OCSVM) AnomalyRatio(X [][]float64) float64 {
	if len(X) == 0 {
		return 0
	}
	count := 0
	for _, x := range X {
		if o.IsAnomaly(x) {
			count++
		}
	}
	return float64(count) / float64(len(X))
}
