package ml

import (
	"math"
	"math/rand/v2"
)

// ForestConfig tunes the random forest.
type ForestConfig struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth, MinLeaf, Thresholds configure each member tree.
	MaxDepth, MinLeaf, Thresholds int
	// Seed drives bootstrapping and per-tree randomness.
	Seed uint64
}

// RandomForest is a bagged ensemble of CART trees with √d feature
// subsampling per node and majority voting.
type RandomForest struct {
	cfg   ForestConfig
	trees []*DecisionTree
	k     int
}

// NewRandomForest creates an unfitted forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 30
	}
	return &RandomForest{cfg: cfg}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RF" }

// Fit implements Classifier.
func (f *RandomForest) Fit(X [][]float64, y []int, k int) error {
	f.k = k
	f.trees = f.trees[:0]
	rng := rand.New(rand.NewPCG(f.cfg.Seed, f.cfg.Seed^0x165667b19e3779f9))
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	mtry := int(math.Ceil(math.Sqrt(float64(d))))
	for b := 0; b < f.cfg.Trees; b++ {
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.IntN(n)
			bx[i], by[i] = X[j], y[j]
		}
		tree := NewDecisionTree(TreeConfig{
			MaxDepth:   f.cfg.MaxDepth,
			MinLeaf:    f.cfg.MinLeaf,
			Thresholds: f.cfg.Thresholds,
			Features:   mtry,
			Seed:       f.cfg.Seed + uint64(b)*2654435761,
		})
		if err := tree.Fit(bx, by, k); err != nil {
			return err
		}
		f.trees = append(f.trees, tree)
	}
	return nil
}

// Predict implements Classifier (majority vote).
func (f *RandomForest) Predict(x []float64) int {
	votes := make([]int, f.k)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	return majorityClass(votes)
}
