package ml

import (
	"math"
	"sort"
)

// BoostConfig tunes the gradient-boosting classifier.
type BoostConfig struct {
	// Rounds is the number of boosting iterations.
	Rounds int
	// MaxDepth bounds each regression tree.
	MaxDepth int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// Thresholds caps candidate splits per feature.
	Thresholds int
	// Seed reserved for subsampling extensions.
	Seed uint64
}

// GradientBoosting is a multiclass gradient-boosted-trees classifier
// with softmax cross-entropy loss: each round fits one regression
// tree per class to the negative gradient (residual p_k − 1{y=k}).
type GradientBoosting struct {
	cfg   BoostConfig
	trees [][]*regTree // [round][class]
	k     int
}

// NewGradientBoosting creates an unfitted model.
func NewGradientBoosting(cfg BoostConfig) *GradientBoosting {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 25
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.2
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 16
	}
	return &GradientBoosting{cfg: cfg}
}

// Name implements Classifier.
func (g *GradientBoosting) Name() string { return "GB" }

// Fit implements Classifier.
func (g *GradientBoosting) Fit(X [][]float64, y []int, k int) error {
	g.k = k
	g.trees = g.trees[:0]
	n := len(X)
	scores := make([][]float64, n) // F_k(x_i)
	for i := range scores {
		scores[i] = make([]float64, k)
	}
	probs := make([]float64, k)
	resid := make([]float64, n)
	for round := 0; round < g.cfg.Rounds; round++ {
		roundTrees := make([]*regTree, k)
		for c := 0; c < k; c++ {
			// Negative gradient of softmax CE w.r.t. F_c.
			for i := 0; i < n; i++ {
				softmaxInto(scores[i], probs)
				target := 0.0
				if y[i] == c {
					target = 1
				}
				resid[i] = target - probs[c]
			}
			tree := &regTree{maxDepth: g.cfg.MaxDepth, thresholds: g.cfg.Thresholds, minLeaf: 4}
			tree.fit(X, resid)
			roundTrees[c] = tree
		}
		// Update scores after fitting the full round so classes are
		// symmetric within a round.
		for i := 0; i < n; i++ {
			for c := 0; c < k; c++ {
				scores[i][c] += g.cfg.LearningRate * roundTrees[c].predict(X[i])
			}
		}
		g.trees = append(g.trees, roundTrees)
	}
	return nil
}

// Predict implements Classifier.
func (g *GradientBoosting) Predict(x []float64) int {
	scores := make([]float64, g.k)
	for _, round := range g.trees {
		for c, tree := range round {
			scores[c] += g.cfg.LearningRate * tree.predict(x)
		}
	}
	return argmax(scores)
}

func softmaxInto(logits, out []float64) {
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// regTree is a small CART regression tree (variance-reduction splits,
// mean-valued leaves) used as the boosting base learner.
type regTree struct {
	maxDepth   int
	thresholds int
	minLeaf    int
	nodes      []regNode
}

type regNode struct {
	feature   int // -1 for leaf
	threshold float64
	left      int
	right     int
	value     float64
}

func (t *regTree) fit(X [][]float64, y []float64) {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.build(X, y, idx, 0)
}

func (t *regTree) build(X [][]float64, y []float64, idx []int, depth int) int {
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	mean := sum / float64(len(idx))
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf {
		return t.leaf(mean)
	}
	feat, thr, ok := t.bestSplit(X, y, idx)
	if !ok {
		return t.leaf(mean)
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf || len(right) < t.minLeaf {
		return t.leaf(mean)
	}
	pos := len(t.nodes)
	t.nodes = append(t.nodes, regNode{feature: feat, threshold: thr})
	l := t.build(X, y, left, depth+1)
	r := t.build(X, y, right, depth+1)
	t.nodes[pos].left, t.nodes[pos].right = l, r
	return pos
}

func (t *regTree) leaf(v float64) int {
	t.nodes = append(t.nodes, regNode{feature: -1, value: v})
	return len(t.nodes) - 1
}

// bestSplit maximizes the variance reduction (∝ sl²/nl + sr²/nr) with
// a single sorted sweep per feature, evaluating every value boundary
// in O(1) via running sums.
func (t *regTree) bestSplit(X [][]float64, y []float64, idx []int) (feat int, thr float64, ok bool) {
	d := len(X[0])
	n := len(idx)
	bestScore := math.Inf(-1)
	type pair struct {
		v, t float64
	}
	pairs := make([]pair, n)
	for f := 0; f < d; f++ {
		var total float64
		for i, r := range idx {
			pairs[i] = pair{X[r][f], y[r]}
			total += y[r]
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[n-1].v {
			continue
		}
		var sl float64
		for i := 0; i < n-1; i++ {
			sl += pairs[i].t
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < t.minLeaf || int(nr) < t.minLeaf {
				continue
			}
			sr := total - sl
			score := sl*sl/nl + sr*sr/nr
			if score > bestScore {
				bestScore, feat, thr, ok = score, f, pairs[i].v, true
			}
		}
	}
	return feat, thr, ok
}

func (t *regTree) predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	pos := 0
	for {
		n := t.nodes[pos]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			pos = n.left
		} else {
			pos = n.right
		}
	}
}
