package ml

import (
	"math"
	"math/rand/v2"
	"sort"
)

// TreeConfig tunes the CART decision tree.
type TreeConfig struct {
	// MaxDepth bounds the tree depth.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// Thresholds caps the number of candidate split thresholds per
	// feature (quantile-sampled; histogram-style splitting).
	Thresholds int
	// Features caps the number of features examined per node
	// (0 = all; random forests set √d).
	Features int
	// Seed drives threshold and feature sampling.
	Seed uint64
}

// DecisionTree is a CART classifier with Gini-impurity splits.
type DecisionTree struct {
	cfg   TreeConfig
	nodes []treeNode
	k     int
	rng   *rand.Rand
}

type treeNode struct {
	feature   int // -1 for leaf
	threshold float64
	left      int
	right     int
	class     int
}

// NewDecisionTree creates an unfitted tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 32
	}
	return &DecisionTree{cfg: cfg}
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DT" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(X [][]float64, y []int, k int) error {
	t.k = k
	t.nodes = t.nodes[:0]
	t.rng = rand.New(rand.NewPCG(t.cfg.Seed, t.cfg.Seed^0xc2b2ae3d27d4eb4f))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.build(X, y, idx, 0)
	return nil
}

// build grows the subtree over the sample indices and returns its
// node position.
func (t *DecisionTree) build(X [][]float64, y []int, idx []int, depth int) int {
	counts := make([]int, t.k)
	for _, i := range idx {
		counts[y[i]]++
	}
	best := majorityClass(counts)
	pure := counts[best] == len(idx)
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf || pure {
		return t.leaf(best)
	}
	feat, thr, ok := t.bestSplit(X, y, idx)
	if !ok {
		return t.leaf(best)
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return t.leaf(best)
	}
	pos := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: feat, threshold: thr})
	l := t.build(X, y, left, depth+1)
	r := t.build(X, y, right, depth+1)
	t.nodes[pos].left, t.nodes[pos].right = l, r
	return pos
}

func (t *DecisionTree) leaf(class int) int {
	t.nodes = append(t.nodes, treeNode{feature: -1, class: class})
	return len(t.nodes) - 1
}

// bestSplit finds the lowest weighted-Gini split with a single sorted
// sweep per feature: class counts (and their sums of squares) are
// maintained incrementally, so every value boundary is evaluated in
// O(1). The weighted Gini nl·(1−Σp²) + nr·(1−Σp²) reduces to
// n − sumSqL/nl − sumSqR/nr, so it suffices to maximize
// sumSqL/nl + sumSqR/nr.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int) (feat int, thr float64, ok bool) {
	d := len(X[0])
	feats := make([]int, d)
	for i := range feats {
		feats[i] = i
	}
	if t.cfg.Features > 0 && t.cfg.Features < d {
		t.rng.Shuffle(d, func(a, b int) { feats[a], feats[b] = feats[b], feats[a] })
		feats = feats[:t.cfg.Features]
	}
	bestScore := math.Inf(-1)
	n := len(idx)
	type pair struct {
		v float64
		c int
	}
	pairs := make([]pair, n)
	countsL := make([]float64, t.k)
	countsR := make([]float64, t.k)
	minLeaf := t.cfg.MinLeaf
	for _, f := range feats {
		for i, r := range idx {
			pairs[i] = pair{X[r][f], y[r]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[n-1].v {
			continue
		}
		for i := range countsL {
			countsL[i] = 0
			countsR[i] = 0
		}
		for _, p := range pairs {
			countsR[p.c]++
		}
		var sumSqL, sumSqR float64
		for _, c := range countsR {
			sumSqR += c * c
		}
		for i := 0; i < n-1; i++ {
			c := pairs[i].c
			sumSqL += 2*countsL[c] + 1
			sumSqR -= 2*countsR[c] - 1
			countsL[c]++
			countsR[c]--
			if pairs[i].v == pairs[i+1].v {
				continue // not a boundary
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			score := sumSqL/nl + sumSqR/nr
			if score > bestScore {
				bestScore, feat, thr, ok = score, f, pairs[i].v, true
			}
		}
	}
	return feat, thr, ok
}

func majorityClass(counts []int) int {
	best, bv := 0, -1
	for c, v := range counts {
		if v > bv {
			best, bv = c, v
		}
	}
	return best
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	if len(t.nodes) == 0 {
		return 0
	}
	pos := 0
	for {
		n := t.nodes[pos]
		if n.feature < 0 {
			return n.class
		}
		if x[n.feature] <= n.threshold {
			pos = n.left
		} else {
			pos = n.right
		}
	}
}
