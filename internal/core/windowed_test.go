package core

import (
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
)

func TestSynthesizeWindowed(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1800, Seed: 111})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	res, err := SynthesizeWindowed(raw, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WindowReports) != 3 {
		t.Fatalf("windows = %d", len(res.WindowReports))
	}
	if res.Table.NumRows() < raw.NumRows()/2 {
		t.Errorf("windowed output too small: %d of %d", res.Table.NumRows(), raw.NumRows())
	}
	if res.Table.Schema().NumFields() != raw.Schema().NumFields() {
		t.Errorf("schema width changed")
	}
	// Every window used the full budget (parallel composition).
	for i, rep := range res.WindowReports {
		if rep.Rho != res.WindowReports[0].Rho {
			t.Errorf("window %d used different budget", i)
		}
	}
}

func TestSynthesizeWindowedSingleFallsBack(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 600, Seed: 113})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeWindowed(raw, fastPipelineConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WindowReports) != 1 {
		t.Fatalf("reports = %d", len(res.WindowReports))
	}
}

func TestSynthesizeWindowedNoTimestamp(t *testing.T) {
	// A table without a ts field cannot be windowed.
	s := dataset.MustSchema(
		dataset.Field{Name: "x", Kind: dataset.KindNumeric},
		dataset.Field{Name: "label", Kind: dataset.KindCategorical, Label: true},
	)
	tab := dataset.NewTable(s, 4)
	for i := int64(0); i < 4; i++ {
		tab.AppendRow([]int64{i, tab.CatCode(1, "a")})
	}
	if _, err := SynthesizeWindowed(tab, fastPipelineConfig(), 2); err == nil {
		t.Fatal("missing ts must error")
	}
}

func TestUserLevelDPScalesNoise(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1200, Seed: 117})
	if err != nil {
		t.Fatal(err)
	}
	record := fastPipelineConfig()
	user := fastPipelineConfig()
	user.UserGroupSize = 8
	pr, err := NewPipeline(record)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := NewPipeline(user)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := pr.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := pu.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The working budget must shrink by k².
	if ures.Report.Rho*63 > rres.Report.Rho*1.01 {
		t.Errorf("user-level rho %v should be 64x below record-level %v", ures.Report.Rho, rres.Report.Rho)
	}
}
