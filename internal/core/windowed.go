package core

import (
	"fmt"
	"sort"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// WindowedResult is the output of a windowed synthesis run.
type WindowedResult struct {
	// Table concatenates the per-window syntheses in time order.
	Table *dataset.Table
	// WindowReports carries each window's pipeline diagnostics.
	WindowReports []Report
}

// SynthesizeWindowed splits a trace into `windows` disjoint
// time-contiguous partitions (by timestamp quantiles) and runs the
// full pipeline on each partition independently, concatenating the
// results.
//
// Privacy: the partitions are disjoint in records, so this is
// parallel composition — every window can use the full (ε, δ) budget
// and the combined release still satisfies (ε, δ)-DP at record level.
//
// Utility/scalability: GUM's cost is linear in records × iterations,
// and the paper notes record synthesis dominates runtime (≈90%);
// windowing bounds each GUM instance and additionally sharpens
// temporal locality (each window's marginals describe that window
// only). This implements the "scale up the synthesis process"
// direction of §3.1 beyond GUMMI itself.
func SynthesizeWindowed(t *dataset.Table, cfg Config, windows int) (*WindowedResult, error) {
	if windows <= 1 {
		p, err := NewPipeline(cfg)
		if err != nil {
			return nil, err
		}
		res, err := p.Synthesize(t)
		if err != nil {
			return nil, err
		}
		return &WindowedResult{Table: res.Table, WindowReports: []Report{res.Report}}, nil
	}
	tsCol := t.Schema().Index(trace.FieldTS)
	if tsCol < 0 {
		return nil, fmt.Errorf("core: windowed synthesis needs a %q field", trace.FieldTS)
	}
	// Partition rows by timestamp quantiles so windows are balanced.
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ts := t.Column(tsCol)
	sort.SliceStable(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })

	var out *dataset.Table
	var reports []Report
	for w := 0; w < windows; w++ {
		lo := w * n / windows
		hi := (w + 1) * n / windows
		if hi <= lo {
			continue
		}
		part := t.SelectRows(order[lo:hi])
		wcfg := cfg
		wcfg.Seed = cfg.Seed + uint64(w)*0x9e3779b9
		p, err := NewPipeline(wcfg)
		if err != nil {
			return nil, err
		}
		res, err := p.Synthesize(part)
		if err != nil {
			return nil, fmt.Errorf("core: window %d: %w", w, err)
		}
		reports = append(reports, res.Report)
		if out == nil {
			out = res.Table
			continue
		}
		if err := appendTable(out, res.Table); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("core: no non-empty windows")
	}
	return &WindowedResult{Table: out, WindowReports: reports}, nil
}

// appendTable appends src's rows to dst; the schemas must match by
// name and categorical values are re-interned through dst's
// dictionaries.
func appendTable(dst, src *dataset.Table) error {
	ds, ss := dst.Schema(), src.Schema()
	if ds.NumFields() != ss.NumFields() {
		return fmt.Errorf("core: schema width mismatch %d vs %d", ds.NumFields(), ss.NumFields())
	}
	row := make([]int64, ds.NumFields())
	for r := 0; r < src.NumRows(); r++ {
		for c := range ds.Fields {
			if ds.Fields[c].Name != ss.Fields[c].Name {
				return fmt.Errorf("core: field %d mismatch: %q vs %q", c, ds.Fields[c].Name, ss.Fields[c].Name)
			}
			v := src.Value(r, c)
			if ds.Fields[c].Kind == dataset.KindCategorical {
				v = dst.CatCode(c, src.CatValue(c, v))
			}
			row[c] = v
		}
		if err := dst.AppendRow(row); err != nil {
			return err
		}
	}
	return nil
}
