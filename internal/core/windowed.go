package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// WindowSource yields disjoint time-contiguous record partitions of
// one trace, in time order. Next returns io.EOF after the last
// window; an empty window (zero rows) is skipped by the engine but
// still consumes its emission index, so a source's numbering is
// stable whether or not every window is populated. The Window.ID is
// the partition's seed identity — the engine derives the per-window
// pipeline seed from it, so sources for which the parallel-composition
// argument should hold must make it a data-independent function of
// the partition (time-span sources use the absolute time bucket).
// dataset.StreamWindows, NewTableWindows, and NewTableTimeWindows all
// satisfy this.
//
// A source is NOT required to be finite or prompt: Next may block
// indefinitely awaiting data that has not arrived yet (a live window
// feed behind continuous ingest). Such sources should also implement
// StoppableSource, or an aborted stream would leak its producer
// goroutine inside a Next that never returns.
type WindowSource interface {
	Next() (dataset.Window, error)
}

// StoppableSource is the optional extension live (blocking) sources
// implement. SynthesizeStream calls Stop exactly once when the stream
// aborts — an emit error, a window pipeline failure, or a source
// error — and a pending or future Next must then return promptly
// (returning io.EOF is fine; the engine is already failing and only
// needs the producer unblocked). Stop must be safe to call
// concurrently with Next. dataset.LiveWindows implements it.
type StoppableSource interface {
	WindowSource
	Stop()
}

// WindowResult is one synthesized window, delivered incrementally by
// SynthesizeStream in window order.
type WindowResult struct {
	// Window is the source's window index.
	Window int
	// Bucket is the source's Window.ID for this partition — the
	// absolute time bucket for span sources, the emission index for
	// quantile sources. It identifies the window to budget ledgers
	// and job traces without re-deriving it from the data.
	Bucket int64
	// Table is the synthesized trace for this window.
	Table *dataset.Table
	// Report carries the window's pipeline diagnostics.
	Report Report
}

// WindowedResult is the output of a batch windowed synthesis run.
type WindowedResult struct {
	// Table concatenates the per-window syntheses in time order.
	Table *dataset.Table
	// WindowReports carries each window's pipeline diagnostics.
	WindowReports []Report
}

// SynthesizeStream pulls windows from src and synthesizes each one
// through the full pipeline as it arrives, emitting results in window
// order. Memory stays bounded by the concurrency, not the stream
// length: at most `workers` windows exist at once (in flight or
// finished-but-unemitted), and a window's slot is released only when
// its result has been emitted, so a slow early window cannot let the
// reorder buffer grow without bound.
//
// The source may be live: Next blocking for minutes awaiting the next
// window is normal operation, not a stall. Pipelines for windows that
// already arrived run (and emit) while the producer waits, so a
// continuous feed sees each window synthesized as it lands, and the
// call returns only when the source ends (io.EOF) or the stream
// fails. On failure a StoppableSource is stopped so a blocked Next
// cannot strand the producer.
//
// Privacy: every window is synthesized under the full (ε, δ) budget
// of cfg, each window's pipeline is seeded from (cfg.Seed, Window.ID)
// alone, and each sees only its own window's records (including its
// own categorical dictionaries), so a window's output is a
// deterministic function of its partition and its ID. What the
// combined release guarantees depends on the source's partitioning
// rule: with data-independent membership (fixed time-span windows,
// where both a record's window and that window's ID are functions of
// the record alone) parallel composition applies and the whole
// release is (ε, δ)-DP at record level. With rank-cut windows
// (count quantiles, fixed row counts) membership shifts when a
// neighboring record is added or removed, parallel composition does
// not apply, and the record-level guarantee must be priced by
// sequential composition across windows — see dataset.WindowSplit.
// Either way the emitted stream is byte-identical for any worker
// count, and identical to the batch path over the same partitions.
//
// An error from the source, a window pipeline, or emit stops the
// stream after the in-flight windows drain; the lowest-index window
// failure wins, mirroring a sequential loop.
func SynthesizeStream(src WindowSource, cfg Config, emit func(WindowResult) error) error {
	return SynthesizeStreamCtx(context.Background(), src, cfg, emit)
}

// SynthesizeStreamCtx is SynthesizeStream with a context that parents
// each window pipeline's per-stage pprof labels — see
// Pipeline.SynthesizeCtx. Labels only, never cancellation.
func SynthesizeStreamCtx(ctx context.Context, src WindowSource, cfg Config, emit func(WindowResult) error) error {
	if src == nil {
		return fmt.Errorf("core: nil window source")
	}
	eng := newEngine(cfg.Workers)
	conc := eng.workers
	type outcome struct {
		w   int
		id  int64 // the source's Window.ID
		res *Result
		err error
	}
	results := make(chan outcome, conc)
	sem := make(chan struct{}, conc)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() {
		stopOnce.Do(func() {
			close(stop)
			// A live source's producer may be parked inside Next
			// awaiting a window that will never matter now; stop it so
			// the drain below can finish.
			if st, ok := src.(StoppableSource); ok {
				st.Stop()
			}
		})
	}

	// When the source knows its window count up front (batch tables,
	// count-quantile streams), small runs split the worker budget the
	// way the old batch path did instead of pinning each window to one
	// worker — 2 windows on an 8-worker budget get 4 workers each.
	// Unknown-length streams keep conc = workers with 1 worker per
	// window, the long-stream optimum. Worker counts never affect
	// output, only scheduling.
	if wc, ok := src.(interface{ Windows() int }); ok {
		if n := wc.Windows(); n > 0 && n < conc {
			conc = n
		}
	}
	innerWorkers, rem := eng.workers/conc, eng.workers%conc

	var srcErr error
	go func() {
		var wg sync.WaitGroup
		defer func() {
			wg.Wait()
			close(results)
		}()
		launched := 0
		for w := 0; ; w++ {
			win, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				srcErr = err // read by the collector only after close(results)
				return
			}
			part := win.Table
			if part == nil || part.NumRows() == 0 {
				// Empty window (rows < windows): it keeps its index —
				// the collector must see a marker for it, or the
				// in-order emitter would wait forever on a window that
				// never comes. No sem slot: nothing runs.
				select {
				case <-stop:
					return
				case results <- outcome{w: w, id: win.ID}:
				}
				continue
			}
			select {
			case <-stop:
				return
			case sem <- struct{}{}:
			}
			li := launched
			launched++
			wg.Add(1)
			go func(w, li int, id int64, part *dataset.Table) {
				defer wg.Done()
				wcfg := cfg
				wcfg.Workers = innerWorkers
				if li%conc < rem {
					// Remainder workers rotate across the in-flight
					// slots so the total stays within the budget at any
					// instant.
					wcfg.Workers++
				}
				// The seed identity is the source's Window.ID, not the
				// emission index: for span sources that keeps every
				// window's seed a function of its own records, so a
				// record added elsewhere cannot perturb this window's
				// output (required for parallel composition).
				wcfg.Seed = cfg.Seed + uint64(id)*0x9e3779b9
				p, err := NewPipeline(wcfg)
				if err != nil {
					results <- outcome{w: w, id: id, err: err}
					return
				}
				res, err := p.SynthesizeCtx(ctx, part)
				if err != nil {
					err = fmt.Errorf("core: window %d: %w", w, err)
				}
				results <- outcome{w: w, id: id, res: res, err: err}
			}(w, li, win.ID, part)
		}
	}()

	var (
		buf      = make(map[int]outcome) // res == nil marks an empty window
		next     int
		failedAt = -1
		failErr  error
	)
	for oc := range results {
		if oc.err != nil {
			if failedAt < 0 || oc.w < failedAt {
				failedAt, failErr = oc.w, oc.err
			}
			abort()
			continue
		}
		if failedAt >= 0 {
			continue // already failing: drain without emitting
		}
		buf[oc.w] = oc
		for {
			o, ok := buf[next]
			if !ok {
				break
			}
			if o.res == nil {
				// Empty window: nothing to emit, no slot to free.
				delete(buf, next)
				next++
				continue
			}
			if err := emit(WindowResult{Window: next, Bucket: o.id, Table: o.res.Table, Report: o.res.Report}); err != nil {
				failedAt, failErr = next, err
				abort()
				break
			}
			delete(buf, next)
			next++
			<-sem // emitted: free the slot for the next window
		}
	}
	if failErr != nil {
		return failErr
	}
	return srcErr
}

// SynthesizeWindowed splits a pre-loaded trace into `windows` disjoint
// time-contiguous partitions (by timestamp quantiles) and runs the
// full pipeline on each, concatenating the results in time order. It
// is the batch entry point over the same engine as SynthesizeStream —
// NewTableWindows adapts the table to a WindowSource — so the two
// paths produce byte-identical output over identical partitions.
//
// Privacy and scalability: the quantile boundaries are data-dependent
// (row ranks), so each window's release is (ε, δ)-DP in isolation but
// the combined release does NOT inherit that guarantee by parallel
// composition — price it by sequential composition across windows, or
// use time-span windows (NewTableTimeWindows) for a record-level
// guarantee at one window's cost. See SynthesizeStream. Windowing
// additionally bounds each GUM instance (the ≈90%-of-runtime stage,
// §3.1) to one window's records and sharpens temporal locality,
// implementing the "scale up the synthesis process" direction beyond
// GUMMI itself.
func SynthesizeWindowed(t *dataset.Table, cfg Config, windows int) (*WindowedResult, error) {
	if windows <= 1 {
		p, err := NewPipeline(cfg)
		if err != nil {
			return nil, err
		}
		res, err := p.Synthesize(t)
		if err != nil {
			return nil, err
		}
		return &WindowedResult{Table: res.Table, WindowReports: []Report{res.Report}}, nil
	}
	src, err := NewTableWindows(t, windows)
	if err != nil {
		return nil, err
	}
	out := &WindowedResult{}
	err = SynthesizeStream(src, cfg, func(wr WindowResult) error {
		out.WindowReports = append(out.WindowReports, wr.Report)
		if out.Table == nil {
			out.Table = wr.Table
			return nil
		}
		return out.Table.AppendRowRange(wr.Table, 0, wr.Table.NumRows())
	})
	if err != nil {
		return nil, err
	}
	if out.Table == nil {
		return nil, fmt.Errorf("core: no non-empty windows")
	}
	return out, nil
}

// tableWindows adapts a pre-loaded table to a WindowSource: rows are
// stably sorted by timestamp and cut at count quantiles, the same
// boundaries dataset.StreamWindows uses in Windows mode, so a
// time-sorted stream of the same rows yields identical partitions.
type tableWindows struct {
	t       *dataset.Table
	order   []int // row indices in time order
	windows int
	next    int
}

// NewTableWindows builds the quantile window source over a loaded
// trace. Each emitted window is a self-contained table — fresh
// categorical dictionaries interned from its own rows — so a window's
// synthesis depends only on its own partition and matches the
// streaming path byte for byte. Note the quantile *boundaries* are
// row ranks and therefore data-dependent; see SynthesizeWindowed for
// what that means for composition.
func NewTableWindows(t *dataset.Table, windows int) (WindowSource, error) {
	if windows < 1 {
		return nil, fmt.Errorf("core: windows must be positive, got %d", windows)
	}
	tsCol := t.Schema().Index(trace.FieldTS)
	if tsCol < 0 {
		return nil, fmt.Errorf("core: windowed synthesis needs a %q field", trace.FieldTS)
	}
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ts := t.Column(tsCol)
	sort.SliceStable(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })
	return &tableWindows{t: t, order: order, windows: windows}, nil
}

// Windows reports the fixed window count, letting SynthesizeStream
// size its per-window worker split for small runs.
func (s *tableWindows) Windows() int { return s.windows }

// Next returns the next quantile window, or io.EOF past the last.
func (s *tableWindows) Next() (dataset.Window, error) {
	if s.next >= s.windows {
		return dataset.Window{}, io.EOF
	}
	w := s.next
	s.next++
	n := len(s.order)
	lo, hi := w*n/s.windows, (w+1)*n/s.windows
	part := dataset.NewTable(s.t.Schema(), hi-lo)
	if err := part.AppendRows(s.t, s.order[lo:hi]); err != nil {
		return dataset.Window{}, err
	}
	return dataset.Window{ID: int64(w), Table: part}, nil
}

// tableTimeWindows adapts a pre-loaded table to a span WindowSource:
// rows are stably sorted by timestamp and grouped into fixed time
// buckets of `span` timestamp units, the same partitioning
// dataset.StreamWindows applies in Span mode, so a time-sorted stream
// of the same rows yields identical windows with identical IDs.
type tableTimeWindows struct {
	t       *dataset.Table
	order   []int // row indices in time order
	ts      []int64
	span    int64
	windows int // distinct non-empty buckets
	next    int // offset into order
}

// NewTableTimeWindows builds the fixed time-range window source over
// a loaded trace: a row with timestamp ts belongs to bucket
// ⌊ts/span⌋, which is a function of that row alone — the
// data-independent membership the parallel composition theorem
// requires. Empty buckets are skipped; each emitted window is a
// self-contained table with the bucket number as its ID.
func NewTableTimeWindows(t *dataset.Table, span int64) (WindowSource, error) {
	if span <= 0 {
		return nil, fmt.Errorf("core: window span must be positive, got %d", span)
	}
	tsCol := t.Schema().Index(trace.FieldTS)
	if tsCol < 0 {
		return nil, fmt.Errorf("core: windowed synthesis needs a %q field", trace.FieldTS)
	}
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ts := t.Column(tsCol)
	sort.SliceStable(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })
	windows := 0
	for i, r := range order {
		if i == 0 || dataset.TimeBucket(ts[r], span) != dataset.TimeBucket(ts[order[i-1]], span) {
			windows++
		}
	}
	return &tableTimeWindows{t: t, order: order, ts: ts, span: span, windows: windows}, nil
}

// Windows reports the bucket count, letting SynthesizeStream size its
// per-window worker split for small runs.
func (s *tableTimeWindows) Windows() int { return s.windows }

// Next returns the next non-empty time bucket, or io.EOF past the
// last.
func (s *tableTimeWindows) Next() (dataset.Window, error) {
	if s.next >= len(s.order) {
		return dataset.Window{}, io.EOF
	}
	lo := s.next
	bucket := dataset.TimeBucket(s.ts[s.order[lo]], s.span)
	hi := lo + 1
	for hi < len(s.order) && dataset.TimeBucket(s.ts[s.order[hi]], s.span) == bucket {
		hi++
	}
	s.next = hi
	part := dataset.NewTable(s.t.Schema(), hi-lo)
	if err := part.AppendRows(s.t, s.order[lo:hi]); err != nil {
		return dataset.Window{}, err
	}
	return dataset.Window{ID: bucket, Table: part}, nil
}
