package core

import (
	"fmt"
	"sort"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// WindowedResult is the output of a windowed synthesis run.
type WindowedResult struct {
	// Table concatenates the per-window syntheses in time order.
	Table *dataset.Table
	// WindowReports carries each window's pipeline diagnostics.
	WindowReports []Report
}

// SynthesizeWindowed splits a trace into `windows` disjoint
// time-contiguous partitions (by timestamp quantiles) and runs the
// full pipeline on each partition independently, concatenating the
// results.
//
// Privacy: the partitions are disjoint in records, so this is
// parallel composition — every window can use the full (ε, δ) budget
// and the combined release still satisfies (ε, δ)-DP at record level.
// Disjointness also makes the windows independent computations, so
// they run fully concurrently (bounded by Config.Workers) — a
// privacy-free speedup. Each window's pipeline is seeded from
// (cfg.Seed, window index) alone, so the concatenated output is
// byte-identical for any worker count.
//
// Utility/scalability: GUM's cost is linear in records × iterations,
// and the paper notes record synthesis dominates runtime (≈90%);
// windowing bounds each GUM instance and additionally sharpens
// temporal locality (each window's marginals describe that window
// only). This implements the "scale up the synthesis process"
// direction of §3.1 beyond GUMMI itself.
func SynthesizeWindowed(t *dataset.Table, cfg Config, windows int) (*WindowedResult, error) {
	if windows <= 1 {
		p, err := NewPipeline(cfg)
		if err != nil {
			return nil, err
		}
		res, err := p.Synthesize(t)
		if err != nil {
			return nil, err
		}
		return &WindowedResult{Table: res.Table, WindowReports: []Report{res.Report}}, nil
	}
	tsCol := t.Schema().Index(trace.FieldTS)
	if tsCol < 0 {
		return nil, fmt.Errorf("core: windowed synthesis needs a %q field", trace.FieldTS)
	}
	// Partition rows by timestamp quantiles so windows are balanced.
	n := t.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ts := t.Column(tsCol)
	sort.SliceStable(order, func(a, b int) bool { return ts[order[a]] < ts[order[b]] })

	type bounds struct{ w, lo, hi int }
	var wins []bounds
	for w := 0; w < windows; w++ {
		lo := w * n / windows
		hi := (w + 1) * n / windows
		if hi > lo {
			wins = append(wins, bounds{w, lo, hi})
		}
	}
	if len(wins) == 0 {
		return nil, fmt.Errorf("core: no non-empty windows")
	}

	// The synthesis path only reads the source table (window parts
	// share its dictionaries read-only), so the window pipelines run
	// concurrently; results land in per-window slots and are
	// concatenated in time order below.
	results := make([]*Result, len(wins))
	eng := newEngine(cfg.Workers)
	// Split the worker budget between concurrent windows and the
	// stages inside each window's pipeline, so Config.Workers bounds
	// the total concurrency instead of multiplying with it. (Worker
	// counts never affect output, only scheduling.)
	conc := len(wins)
	if conc > eng.workers {
		conc = eng.workers
	}
	innerWorkers, rem := eng.workers/conc, eng.workers%conc
	err := eng.parallelForErr(len(wins), func(i int) error {
		win := wins[i]
		part := t.SelectRows(order[win.lo:win.hi])
		wcfg := cfg
		// Remainder workers go to the first windows (rem < conc, so
		// the total stays within the budget at any instant).
		wcfg.Workers = innerWorkers
		if i < rem {
			wcfg.Workers++
		}
		wcfg.Seed = cfg.Seed + uint64(win.w)*0x9e3779b9
		p, err := NewPipeline(wcfg)
		if err != nil {
			return err
		}
		res, err := p.Synthesize(part)
		if err != nil {
			return fmt.Errorf("core: window %d: %w", win.w, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := results[0].Table
	reports := make([]Report, 0, len(results))
	for i, res := range results {
		reports = append(reports, res.Report)
		if i == 0 {
			continue
		}
		if err := appendTable(out, res.Table); err != nil {
			return nil, err
		}
	}
	return &WindowedResult{Table: out, WindowReports: reports}, nil
}

// appendTable appends src's rows to dst; the schemas must match by
// name and categorical values are re-interned through dst's
// dictionaries.
func appendTable(dst, src *dataset.Table) error {
	ds, ss := dst.Schema(), src.Schema()
	if ds.NumFields() != ss.NumFields() {
		return fmt.Errorf("core: schema width mismatch %d vs %d", ds.NumFields(), ss.NumFields())
	}
	row := make([]int64, ds.NumFields())
	for r := 0; r < src.NumRows(); r++ {
		for c := range ds.Fields {
			if ds.Fields[c].Name != ss.Fields[c].Name {
				return fmt.Errorf("core: field %d mismatch: %q vs %q", c, ds.Fields[c].Name, ss.Fields[c].Name)
			}
			v := src.Value(r, c)
			if ds.Fields[c].Kind == dataset.KindCategorical {
				v = dst.CatCode(c, src.CatValue(c, v))
			}
			row[c] = v
		}
		if err := dst.AppendRow(row); err != nil {
			return err
		}
	}
	return nil
}
