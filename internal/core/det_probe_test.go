package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

// TestCrossProcessDeterminism verifies that the full pipeline output
// is identical across separate test processes (Go randomizes map
// iteration per process, so any hidden map-order dependence shows up
// here). The expected hash is pinned for the fixed input and seed.
func TestCrossProcessDeterminism(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1772, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epsilon = 16
	cfg.GUM.Iterations = 30
	cfg.Seed = 42
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for c := 0; c < res.Table.NumCols(); c++ {
		for _, v := range res.Table.Column(c) {
			fmt.Fprintf(h, "%d,", v)
		}
	}
	fmt.Printf("DETHASH rows=%d hash=%x\n", res.Table.NumRows(), h.Sum64())
}

// TestCrossProcessDeterminismCells32 runs the same pinned-input
// pipeline with GUM's float32 dense-cell arena and prints its own
// fingerprint line. The arena only ever holds integral counts below
// 2²⁴, where float32 is exact, so the hash must equal the base
// DETHASH — that equality is asserted here, not just eyeballed.
func TestCrossProcessDeterminismCells32(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1772, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	hash := func(cells32 bool) (int, uint64) {
		cfg := DefaultConfig()
		cfg.Epsilon = 16
		cfg.GUM.Iterations = 30
		cfg.Seed = 42
		cfg.GUM.Cells32 = cells32
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Synthesize(raw)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		for c := 0; c < res.Table.NumCols(); c++ {
			for _, v := range res.Table.Column(c) {
				fmt.Fprintf(h, "%d,", v)
			}
		}
		return res.Table.NumRows(), h.Sum64()
	}
	rows32, h32 := hash(true)
	rows64, h64 := hash(false)
	fmt.Printf("DETHASH-CELLS32 rows=%d hash=%x\n", rows32, h32)
	if rows32 != rows64 || h32 != h64 {
		t.Fatalf("Cells32 fingerprint rows=%d hash=%x diverges from float64 rows=%d hash=%x",
			rows32, h32, rows64, h64)
	}
}
