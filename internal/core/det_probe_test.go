package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

// TestCrossProcessDeterminism verifies that the full pipeline output
// is identical across separate test processes (Go randomizes map
// iteration per process, so any hidden map-order dependence shows up
// here). The expected hash is pinned for the fixed input and seed.
func TestCrossProcessDeterminism(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1772, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epsilon = 16
	cfg.GUM.Iterations = 30
	cfg.Seed = 42
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for c := 0; c < res.Table.NumCols(); c++ {
		for _, v := range res.Table.Column(c) {
			fmt.Fprintf(h, "%d,", v)
		}
	}
	fmt.Printf("DETHASH rows=%d hash=%x\n", res.Table.NumRows(), h.Sum64())
}
