package core

import (
	"cmp"
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"github.com/netdpsyn/netdpsyn/internal/core/kernels"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// GUMConfig tunes the Gradually Update Method record synthesizer.
type GUMConfig struct {
	// Iterations is the maximum number of update rounds over the
	// marginal set (the paper defaults to 200).
	Iterations int
	// InitAlpha is the initial fraction of the required record moves
	// applied per round; it decays geometrically so the dataset
	// settles (PrivSyn uses 1.0 and 0.84).
	InitAlpha, AlphaDecay float64
	// DuplicateProb is the probability of satisfying a deficit by
	// duplicating an existing matching record (which preserves its
	// other attributes) instead of overwriting the marginal's
	// attributes in place.
	DuplicateProb float64
	// Seed drives all sampling.
	Seed uint64
	// Workers bounds the pool that plans the per-marginal update
	// passes concurrently (≤ 0 means all cores). Each pass draws from
	// its own (Seed, round, marginal)-derived RNG, so the output is
	// identical for any worker count.
	Workers int
	// Cells32 stores the dense arena's per-cell counts and move
	// quotas as float32 instead of float64, cutting the hot arrays'
	// cache footprint by a third (vals+stamp per cell: 8 bytes
	// instead of 12) for large cell spaces. The arena only ever holds
	// integers — unit-increment tallies and stochastically rounded
	// quotas — and float32 is exact for integers below 2²⁴, so
	// synthesis output stays byte-identical to the float64 arena for
	// any realistic record count (the equivalence suite asserts it).
	// Off by default; a cache lever for huge dense marginals.
	Cells32 bool
	// denseMode overrides the per-marginal dense/sparse counting
	// decision for tests: the two paths are contractually
	// byte-identical, and the equivalence suite forces each in turn.
	denseMode int
}

// denseMode values: 0 decides per marginal at NewGUM (dense iff the
// cell space fits max(4·n, gumDenseCellFloor)); the forced modes are
// test-only.
const (
	gumDenseAuto = iota
	gumDenseForced
	gumSparseForced
)

// DefaultGUMConfig returns the paper's defaults.
func DefaultGUMConfig() GUMConfig {
	return GUMConfig{Iterations: 200, InitAlpha: 1.0, AlphaDecay: 0.84, DuplicateProb: 0.5, Seed: 1}
}

// GUM iteratively updates an encoded dataset until its marginals
// approach the published targets. The initial dataset init is
// modified in place and returned; use InitIndependent for plain GUM
// or InitGUMMI for NetDPSyn's marginal initialization.
type GUM struct {
	cfg        GUMConfig
	targets    []*target
	denseCells int // largest dense marginal's cell space (arena size)
}

type target struct {
	m      *marginal.Marginal
	counts []float64 // scaled so the sum equals the synthetic record count
	// dense selects the arena counting path: current counts, move
	// quotas, and representative rows live in epoch-stamped arrays
	// indexed by cell instead of maps. Chosen at NewGUM time; both
	// paths produce byte-identical plans.
	dense bool
	// tcells are the cells with target > gumDust, ascending — the
	// only zero-count cells that can contribute deficits. Fixed per
	// run, so each plan merges it with the touched set instead of
	// rescanning the whole (possibly huge) target vector.
	tcells []int
}

// NewGUM prepares a synthesizer for the given published marginals and
// synthetic record count n.
func NewGUM(ms []*marginal.Marginal, n int, cfg GUMConfig) *GUM {
	g := &GUM{cfg: cfg}
	denseLimit := 4 * n
	if denseLimit < gumDenseCellFloor {
		denseLimit = gumDenseCellFloor
	}
	for _, m := range ms {
		t := &target{m: m, counts: append([]float64(nil), m.Counts...)}
		var sum float64
		for _, c := range t.counts {
			if c > 0 {
				sum += c
			} else {
				c = 0
			}
		}
		if sum > 0 {
			scale := float64(n) / sum
			for i, c := range t.counts {
				if c < 0 {
					c = 0
				}
				t.counts[i] = c * scale
			}
		}
		switch cfg.denseMode {
		case gumDenseForced:
			t.dense = true
		case gumSparseForced:
			t.dense = false
		default:
			t.dense = len(t.counts) <= denseLimit
		}
		if t.dense && len(t.counts) > g.denseCells {
			g.denseCells = len(t.counts)
		}
		for c, tc := range t.counts {
			if tc > gumDust {
				t.tcells = append(t.tcells, c)
			}
		}
		g.targets = append(g.targets, t)
	}
	return g
}

// Run applies the update rounds to ds in place and returns the
// per-round average L1 error (‖S−T‖₁ / n averaged over marginals),
// which decreases as the synthesis converges.
func (g *GUM) Run(ds *dataset.Encoded) []float64 {
	return g.run(ds, newEngine(g.cfg.Workers))
}

// run is Run on a caller-provided worker pool (the pipeline threads
// its engine through so stage timings capture GUM's busy time).
//
// Each round snapshots the dataset, plans every marginal's update
// pass against that snapshot concurrently, then applies the plans
// sequentially in marginal order. Planning — the O(records × attrs)
// hot path that dominates end-to-end runtime — is a pure function of
// (snapshot, target, alpha, per-pass RNG), so the fan-out cannot
// perturb the output: a pass's RNG derives from (Seed, round,
// marginal index), never from worker identity or completion order.
func (g *GUM) run(ds *dataset.Encoded, eng *engine) []float64 {
	n := ds.NumRows()
	if n == 0 || len(g.targets) == 0 {
		return nil
	}
	errs := make([]float64, 0, g.cfg.Iterations)
	alpha := g.cfg.InitAlpha
	snap := dataset.NewEncoded(ds.Names, ds.Domains, n)
	// Steady-state arenas: one plan per target (its moves/row buffers
	// live until the sequential apply, then are reused next round)
	// and one scratch per worker slot (reused across every
	// (round, marginal) task that slot runs — see gumScratch).
	plans := make([]gumPlan, len(g.targets))
	scratch := make([]*gumScratch, eng.workers)
	maxAttrs := 0
	for _, t := range g.targets {
		if len(t.m.Attrs) > maxAttrs {
			maxAttrs = len(t.m.Attrs)
		}
	}
	codes := make([]int32, maxAttrs) // applyPlan's cell-decode buffer
	// Chunked plan fan-out: with a huge published-marginal store the
	// per-task handout overhead (one atomic claim plus busy-clock
	// sampling per marginal) starts to show, so tasks are claimed in
	// contiguous shards of ~4 chunks per worker — small enough to
	// balance uneven marginal sizes, large enough to amortize the
	// handout. Scheduling never reaches the output (plans are pure
	// functions of (snapshot, target, alpha, seed)).
	planChunk := len(g.targets) / (eng.workers * 4)
	if planChunk > 64 {
		planChunk = 64
	}
	// Dirty-column tracking: ds differs from snap only in columns the
	// previous round's moves touched (a duplicate move rewrites every
	// column, a replace move only its marginal's attributes), so the
	// per-round snapshot re-copies just those instead of the whole
	// table.
	dirty := make([]bool, len(ds.Cols))
	allDirty := true // first round: snap starts zeroed
	for it := 0; it < g.cfg.Iterations; it++ {
		for a := range ds.Cols {
			if allDirty || dirty[a] {
				copy(snap.Cols[a], ds.Cols[a])
				dirty[a] = false
			}
		}
		allDirty = false
		base := it * len(g.targets)
		eng.parallelForWorkerChunked(len(g.targets), planChunk, func(w, ti int) {
			sc := scratch[w]
			if sc == nil {
				sc = newGumScratch(n, g.denseCells, g.cfg.Cells32)
				scratch[w] = sc
			}
			seed := taskSeed(g.cfg.Seed, "gum-update", base+ti)
			sc.reseed(seed)
			planUpdate(snap, g.targets[ti], alpha, g.cfg.DuplicateProb, sc, &plans[ti])
		})
		var roundErr float64
		for ti, t := range g.targets {
			p := &plans[ti]
			roundErr += p.l1
			applyPlan(ds, t.m, p, codes)
			if p.dups > 0 {
				allDirty = true
			} else if len(p.moves) > 0 {
				for _, a := range t.m.Attrs {
					dirty[a] = true
				}
			}
		}
		errs = append(errs, roundErr/float64(len(g.targets))/float64(n))
		alpha *= g.cfg.AlphaDecay
	}
	return errs
}

// gumMove is one planned record rewrite: duplicate a full source row
// over r (rowOff ≥ 0, an offset into the plan's rowBuf, preserving
// the source's cross-marginal correlations), or overwrite r's
// marginal attributes with the codes of cell (rowOff < 0). The
// duplicate captures the source record's snapshot codes at planning
// time, so applying a plan cannot be invalidated by an earlier
// marginal's moves in the same round.
type gumMove struct {
	r      int
	cell   int
	rowOff int
}

// gumPlan is one marginal's update pass: the L1 error measured on the
// round snapshot and the record moves to apply. The move and row
// buffers are owned by the plan and recycled across rounds (a plan
// must stay readable until the round's sequential apply, so the
// buffers cannot live in the per-worker scratch).
type gumPlan struct {
	l1     float64
	moves  []gumMove
	rowBuf []int32 // duplicate moves' captured rows, nAttrs each
	dups   int     // duplicate moves planned (they dirty every column)
}

// reset clears the plan for reuse, keeping the buffers.
func (p *gumPlan) reset() {
	p.l1 = 0
	p.moves = p.moves[:0]
	p.rowBuf = p.rowBuf[:0]
	p.dups = 0
}

// planUpdate computes one marginal's update pass against the round
// snapshot into plan: the planned moves plus the L1 error before the
// update. It reads only ds and the (freshly reseeded) scratch RNG, so
// concurrent plans are safe and reproducible; all working memory
// comes from the scratch arena and the plan's own buffers, so the
// steady state allocates ~nothing. The dense (float64 or Cells32)
// and sparse counting paths are byte-identical by contract: every
// ordered traversal — and in particular every RNG draw — happens in
// ascending cell order (or the gap-sorted under order), never in map
// order.
func planUpdate(ds *dataset.Encoded, t *target, alpha, dupProb float64, sc *gumScratch, plan *gumPlan) {
	plan.reset()
	if !t.dense {
		planUpdateSparse(ds, t, alpha, dupProb, sc, plan)
		return
	}
	if sc.vals32 != nil {
		planUpdateDense(ds, t, alpha, dupProb, sc, plan, sc.vals32)
	} else {
		planUpdateDense(ds, t, alpha, dupProb, sc, plan, sc.vals)
	}
}

// sortUnderByGap orders deficits largest-gap first (ties by cell
// index) — the order they are served in and the order their RNG
// draws happen in.
func sortUnderByGap(under []cellGap) {
	slices.SortFunc(under, func(a, b cellGap) int {
		if a.Gap != b.Gap {
			if a.Gap > b.Gap {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Cell, b.Cell)
	})
}

// shufflePool is Fisher–Yates with the same draw sequence as
// rng.Shuffle, minus its closure allocation.
func shufflePool(rng *rand.Rand, pool []int) {
	for i := len(pool) - 1; i > 0; i-- {
		j := int(rng.Uint64N(uint64(i + 1)))
		pool[i], pool[j] = pool[j], pool[i]
	}
}

// planUpdateDense is planUpdate's arena path, generic over the cell
// element type (float64, or float32 under Cells32). The phase loops
// live in the kernels package; this function owns the phase order
// and every RNG draw.
func planUpdateDense[F kernels.Float](ds *dataset.Encoded, t *target, alpha, dupProb float64, sc *gumScratch, plan *gumPlan, vals []F) {
	n := ds.NumRows()
	rng := sc.rng
	// Phase 1: current cell of every record plus cell counts, fused
	// into one row sweep (this runs once per marginal per round over
	// every record — the inner loop of the ≈90%-of-runtime synthesis
	// stage).
	countE, quotaE, repE := sc.phases()
	cells := len(t.counts)
	denseTally(sc, vals, ds, t.m, cells, countE)
	// Phase 2: L1 error and over/under split from the touched cells
	// and the precomputed target-bearing cells. Only cells with
	// nonzero current or target > gumDust can contribute; gaps below
	// gumDust cannot be satisfied by integer record moves and would
	// only soak up the move budget. Two byte-identical routes: when
	// the cell space is within gumSweepFactor of the interesting set,
	// one linear ascending sweep of the arena classifies everything
	// without sorting (the per-plan sort used to be ~a third of gum
	// wall); otherwise the touched set is sorted and merged. Either
	// way the traversal is ascending-cell, which fixes the FP
	// accumulation order of l1 and leaves over already cell-sorted —
	// the order the quota draws consume the RNG in.
	over, under := sc.over[:0], sc.under[:0]
	var l1 float64
	if cells <= gumSweepFactor*(len(sc.touched)+len(t.tcells)) {
		over, under, l1 = kernels.GapSweep(vals, sc.stamp, countE, t.counts, t.tcells, gumDust, over, under)
	} else {
		slices.Sort(sc.touched)
		over, under, l1 = kernels.GapMerge(sc.touched, vals, t.counts, t.tcells, gumDust, over, under)
	}
	sc.over, sc.under = over, under
	plan.l1 = l1
	if len(over) == 0 || len(under) == 0 || alpha <= 0 {
		return
	}
	sortUnderByGap(under)

	// Phase 3: pool of movable records from over-represented cells,
	// capped at alpha·excess per cell. Quotas use probabilistic
	// rounding: with ceil(), every cell would keep contributing ≥1
	// record per round no matter how small alpha gets, and a large
	// marginal set would thrash forever instead of settling. The
	// summed quotas pre-size the pool and move buffers. Quotas are
	// integral, so storing them as F is exact in both cell modes.
	poolCap := 0
	cellOf := sc.cellOf[:n]
	stamp := sc.stamp
	for _, o := range over {
		q := stochasticRound(rng, o.Gap*alpha)
		vals[o.Cell] = F(q)
		stamp[o.Cell] = quotaE
		poolCap += int(q)
	}
	pool := sc.pool[:0]
	if cap(pool) < poolCap {
		pool = make([]int, 0, poolCap)
	}
	pool = kernels.PoolScan(cellOf, vals, stamp, quotaE, pool, poolCap)
	sc.pool = pool
	shufflePool(rng, pool)

	// Phase 4: a representative record for each under cell enables
	// the duplicate operation. Only under cells are mapped, and the
	// row scan stops as soon as every findable cell has one: an under
	// cell still stamped countE here was counted this plan (its rows
	// exist); the rest have zero count — no row can ever match them,
	// so they must not keep the scan alive.
	rep := sc.rep
	findable := 0
	for _, u := range under {
		if stamp[u.Cell] == countE {
			findable++
		}
		stamp[u.Cell] = repE
		rep[u.Cell] = -1
	}
	kernels.RepScan(cellOf, rep, stamp, repE, findable)

	// Phase 5: the moves.
	nAttrs := ds.NumAttrs()
	moves := plan.moves[:0]
	if cap(moves) < poolCap {
		moves = make([]gumMove, 0, poolCap)
	}
	rowBuf := plan.rowBuf
	pi := 0
	for _, u := range under {
		need := int(stochasticRound(rng, u.Gap*alpha))
		for k := 0; k < need && pi < len(pool); k++ {
			r := pool[pi]
			pi++
			q, ok := 0, false
			if v := rep[u.Cell]; v >= 0 { // stamped repE above
				q, ok = int(v), true
			}
			if ok && q != r && rng.Float64() < dupProb {
				// Duplicate: capture the source row's snapshot codes.
				off := len(rowBuf)
				for a := 0; a < nAttrs; a++ {
					rowBuf = append(rowBuf, ds.Cols[a][q])
				}
				moves = append(moves, gumMove{r: r, rowOff: off})
				plan.dups++
			} else {
				moves = append(moves, gumMove{r: r, cell: u.Cell, rowOff: -1})
				rep[u.Cell] = int32(r)
			}
		}
		if pi >= len(pool) {
			break
		}
	}
	plan.moves, plan.rowBuf = moves, rowBuf
}

// planUpdateSparse is planUpdate's map fallback for marginals whose
// projected cell space is too large to arena. Same phase order, same
// RNG draw sequence, byte-identical plans.
func planUpdateSparse(ds *dataset.Encoded, t *target, alpha, dupProb float64, sc *gumScratch, plan *gumPlan) {
	n := ds.NumRows()
	rng := sc.rng
	// Phase 1.
	sc.sparseTally(ds, t.m)
	// Phase 2: the sorted touched cells merged against the
	// target-bearing cells, counts read back from the map.
	slices.Sort(sc.touched)
	over, under := sc.over[:0], sc.under[:0]
	var l1 float64
	ki, kn := 0, len(t.tcells)
	for _, c := range sc.touched {
		for ki < kn && t.tcells[ki] < c {
			tc := t.tcells[ki]
			gap := t.counts[tc]
			l1 += gap
			under = append(under, cellGap{Cell: tc, Gap: gap})
			ki++
		}
		if ki < kn && t.tcells[ki] == c {
			ki++
		}
		d := sc.counts[c] - t.counts[c]
		l1 += math.Abs(d)
		if d > gumDust {
			over = append(over, cellGap{Cell: c, Gap: d})
		} else if d < -gumDust {
			under = append(under, cellGap{Cell: c, Gap: -d})
		}
	}
	for ; ki < kn; ki++ {
		tc := t.tcells[ki]
		gap := t.counts[tc]
		l1 += gap
		under = append(under, cellGap{Cell: tc, Gap: gap})
	}
	sc.over, sc.under = over, under
	plan.l1 = l1
	if len(over) == 0 || len(under) == 0 || alpha <= 0 {
		return
	}
	sortUnderByGap(under)

	// Phase 3 (see planUpdateDense; quotas live in a map here).
	poolCap := 0
	cellOf := sc.cellOf[:n]
	clear(sc.quota)
	for _, o := range over {
		q := stochasticRound(rng, o.Gap*alpha)
		sc.quota[o.Cell] = q
		poolCap += int(q)
	}
	pool := sc.pool[:0]
	if cap(pool) < poolCap {
		pool = make([]int, 0, poolCap)
	}
	for r, want := 0, poolCap; r < n && want > 0; r++ {
		if q, ok := sc.quota[cellOf[r]]; ok && q >= 1 {
			pool = append(pool, r)
			sc.quota[cellOf[r]] = q - 1
			want--
		}
	}
	sc.pool = pool
	shufflePool(rng, pool)

	// Phase 4 (see planUpdateDense: only under cells counted this
	// plan can find a representative, so only they bound the scan).
	clear(sc.srep)
	needRep := 0
	for _, u := range under {
		if _, counted := sc.counts[u.Cell]; counted {
			needRep++
		}
		sc.srep[u.Cell] = -1
	}
	for r := 0; r < n && needRep > 0; r++ {
		if v, ok := sc.srep[cellOf[r]]; ok && v < 0 {
			sc.srep[cellOf[r]] = r
			needRep--
		}
	}

	// Phase 5.
	nAttrs := ds.NumAttrs()
	moves := plan.moves[:0]
	if cap(moves) < poolCap {
		moves = make([]gumMove, 0, poolCap)
	}
	rowBuf := plan.rowBuf
	pi := 0
	for _, u := range under {
		need := int(stochasticRound(rng, u.Gap*alpha))
		for k := 0; k < need && pi < len(pool); k++ {
			r := pool[pi]
			pi++
			q, ok := 0, false
			if v := sc.srep[u.Cell]; v >= 0 {
				q, ok = v, true
			}
			if ok && q != r && rng.Float64() < dupProb {
				// Duplicate: capture the source row's snapshot codes.
				off := len(rowBuf)
				for a := 0; a < nAttrs; a++ {
					rowBuf = append(rowBuf, ds.Cols[a][q])
				}
				moves = append(moves, gumMove{r: r, rowOff: off})
				plan.dups++
			} else {
				moves = append(moves, gumMove{r: r, cell: u.Cell, rowOff: -1})
				sc.srep[u.Cell] = r
			}
		}
		if pi >= len(pool) {
			break
		}
	}
	plan.moves, plan.rowBuf = moves, rowBuf
}

// applyPlan executes one marginal's planned moves against the live
// dataset. Plans are applied in marginal order, so the result is
// independent of how the planning was scheduled. codes is a
// len ≥ len(m.Attrs) decode buffer owned by the caller.
func applyPlan(ds *dataset.Encoded, m *marginal.Marginal, p *gumPlan, codes []int32) {
	nAttrs := ds.NumAttrs()
	for _, mv := range p.moves {
		if mv.rowOff >= 0 {
			// Duplicate: copy the planned full record, preserving the
			// correlations of attributes outside this marginal.
			row := p.rowBuf[mv.rowOff : mv.rowOff+nAttrs]
			for a, v := range row {
				ds.Cols[a][mv.r] = v
			}
		} else {
			// Replace: overwrite only this marginal's attributes.
			m.CellInto(mv.cell, codes)
			for i, a := range m.Attrs {
				ds.Cols[a][mv.r] = codes[i]
			}
		}
	}
}

// stochasticRound rounds x down, plus one with probability frac(x),
// so quotas are unbiased and vanish as the update rate decays.
func stochasticRound(rng *rand.Rand, x float64) float64 {
	fl := math.Floor(x)
	if rng.Float64() < x-fl {
		fl++
	}
	return fl
}

// InitIndependent builds the plain-GUM starting dataset: every
// attribute sampled independently from its published 1-way marginal.
func InitIndependent(names []string, domains []int, oneWay []*marginal.Marginal, n int, seed uint64) (*dataset.Encoded, error) {
	if len(oneWay) != len(domains) {
		return nil, fmt.Errorf("core: %d one-way marginals for %d attributes", len(oneWay), len(domains))
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xbb67ae8584caa73b))
	ds := dataset.NewEncoded(names, domains, n)
	for a := range domains {
		samp := newCatSampler(oneWay[a].Counts)
		col := ds.Cols[a]
		for r := 0; r < n; r++ {
			col[r] = int32(samp.Sample(rng))
		}
	}
	return ds, nil
}

// InitGUMMI builds NetDPSyn's marginal-initialized starting dataset
// (§3.4): the key attribute (the label) is sampled from its 1-way
// marginal, then every published marginal containing the key — taken
// in decreasing |Pearson correlation| order — assigns its remaining
// attributes conditionally on the key, and any attribute left
// unassigned falls back to its independent 1-way marginal. nInit
// caps how many key marginals are used (≤ 0 means all).
func InitGUMMI(names []string, domains []int, oneWay, published []*marginal.Marginal, keyAttr, n, nInit int, seed uint64) (*dataset.Encoded, error) {
	if keyAttr < 0 || keyAttr >= len(domains) {
		return nil, fmt.Errorf("core: key attribute %d out of range", keyAttr)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x3c6ef372fe94f82b))
	ds := dataset.NewEncoded(names, domains, n)

	// Key marginals ordered by |Pearson| (computed on the noisy
	// counts; no extra budget).
	type keyed struct {
		m    *marginal.Marginal
		corr float64
	}
	var key []keyed
	for _, m := range published {
		hasKey := false
		for _, a := range m.Attrs {
			if a == keyAttr {
				hasKey = true
				break
			}
		}
		if !hasKey || len(m.Attrs) < 2 {
			continue
		}
		corr := 0.0
		if len(m.Attrs) == 2 {
			c, err := m.PearsonCorr()
			if err == nil {
				corr = math.Abs(c)
			}
		} else {
			corr = 1 // multi-way key marginals are used first
		}
		key = append(key, keyed{m, corr})
	}
	sort.SliceStable(key, func(a, b int) bool { return key[a].corr > key[b].corr })
	if nInit > 0 && nInit < len(key) {
		key = key[:nInit]
	}

	// Sample the key attribute.
	keySamp := newCatSampler(oneWay[keyAttr].Counts)
	keyCol := ds.Cols[keyAttr]
	for r := 0; r < n; r++ {
		keyCol[r] = int32(keySamp.Sample(rng))
	}
	assigned := make([]bool, len(domains))
	assigned[keyAttr] = true

	// Conditional assignment from each key marginal.
	for _, km := range key {
		m := km.m
		newAttrs := make([]int, 0, len(m.Attrs))
		for _, a := range m.Attrs {
			if !assigned[a] {
				newAttrs = append(newAttrs, a)
			}
		}
		if len(newAttrs) == 0 {
			continue
		}
		cond, err := newConditionalSampler(m, keyAttr)
		if err != nil {
			return nil, err
		}
		// Decode each sampled cell into a reused buffer and assign only
		// the not-yet-covered attribute positions (precomputed, so the
		// row loop does no membership scans and allocates nothing).
		codes := make([]int32, len(m.Attrs))
		newPos := make([]int, 0, len(newAttrs))
		for i, a := range m.Attrs {
			if !assigned[a] {
				newPos = append(newPos, i)
			}
		}
		for r := 0; r < n; r++ {
			cell := cond.Sample(rng, keyCol[r])
			m.CellInto(cell, codes)
			for _, i := range newPos {
				ds.Cols[m.Attrs[i]][r] = codes[i]
			}
		}
		for _, a := range newAttrs {
			assigned[a] = true
		}
	}

	// Independent fallback for uncovered attributes.
	for a := range domains {
		if assigned[a] {
			continue
		}
		samp := newCatSampler(oneWay[a].Counts)
		col := ds.Cols[a]
		for r := 0; r < n; r++ {
			col[r] = int32(samp.Sample(rng))
		}
	}
	return ds, nil
}

// catSampler draws from a non-negative weight vector via CDF binary
// search.
type catSampler struct {
	cdf []float64
}

func newCatSampler(weights []float64) *catSampler {
	cdf := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cdf[i] = total
	}
	if total <= 0 {
		for i := range cdf {
			cdf[i] = float64(i+1) / float64(len(cdf))
		}
		return &catSampler{cdf: cdf}
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &catSampler{cdf: cdf}
}

func (s *catSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// conditionalSampler draws a full marginal cell conditioned on the
// key attribute's value.
type conditionalSampler struct {
	perKey []*catSampler // indexed by key code; samples a cell offset
	cells  [][]int       // cell indices behind each sampler
}

func newConditionalSampler(m *marginal.Marginal, keyAttr int) (*conditionalSampler, error) {
	keyPos := -1
	for i, a := range m.Attrs {
		if a == keyAttr {
			keyPos = i
			break
		}
	}
	if keyPos < 0 {
		return nil, fmt.Errorf("core: marginal %v lacks key attribute %d", m.Attrs, keyAttr)
	}
	dom := m.Domains[keyPos]
	cells := make([][]int, dom)
	weights := make([][]float64, dom)
	for idx, c := range m.Counts {
		codes := m.Cell(idx)
		k := int(codes[keyPos])
		cells[k] = append(cells[k], idx)
		if c < 0 {
			c = 0
		}
		weights[k] = append(weights[k], c)
	}
	cs := &conditionalSampler{perKey: make([]*catSampler, dom), cells: cells}
	for k := 0; k < dom; k++ {
		cs.perKey[k] = newCatSampler(weights[k])
	}
	return cs, nil
}

// Sample returns a flattened cell index of the marginal whose key
// code equals k.
func (c *conditionalSampler) Sample(rng *rand.Rand, k int32) int {
	ki := int(k)
	if ki < 0 || ki >= len(c.perKey) || len(c.cells[ki]) == 0 {
		ki = 0
	}
	return c.cells[ki][c.perKey[ki].Sample(rng)]
}
