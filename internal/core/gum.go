package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// GUMConfig tunes the Gradually Update Method record synthesizer.
type GUMConfig struct {
	// Iterations is the maximum number of update rounds over the
	// marginal set (the paper defaults to 200).
	Iterations int
	// InitAlpha is the initial fraction of the required record moves
	// applied per round; it decays geometrically so the dataset
	// settles (PrivSyn uses 1.0 and 0.84).
	InitAlpha, AlphaDecay float64
	// DuplicateProb is the probability of satisfying a deficit by
	// duplicating an existing matching record (which preserves its
	// other attributes) instead of overwriting the marginal's
	// attributes in place.
	DuplicateProb float64
	// Seed drives all sampling.
	Seed uint64
	// Workers bounds the pool that plans the per-marginal update
	// passes concurrently (≤ 0 means all cores). Each pass draws from
	// its own (Seed, round, marginal)-derived RNG, so the output is
	// identical for any worker count.
	Workers int
}

// DefaultGUMConfig returns the paper's defaults.
func DefaultGUMConfig() GUMConfig {
	return GUMConfig{Iterations: 200, InitAlpha: 1.0, AlphaDecay: 0.84, DuplicateProb: 0.5, Seed: 1}
}

// GUM iteratively updates an encoded dataset until its marginals
// approach the published targets. The initial dataset init is
// modified in place and returned; use InitIndependent for plain GUM
// or InitGUMMI for NetDPSyn's marginal initialization.
type GUM struct {
	cfg     GUMConfig
	targets []*target
}

type target struct {
	m      *marginal.Marginal
	counts []float64 // scaled so the sum equals the synthetic record count
}

// NewGUM prepares a synthesizer for the given published marginals and
// synthetic record count n.
func NewGUM(ms []*marginal.Marginal, n int, cfg GUMConfig) *GUM {
	g := &GUM{cfg: cfg}
	for _, m := range ms {
		t := &target{m: m, counts: append([]float64(nil), m.Counts...)}
		var sum float64
		for _, c := range t.counts {
			if c > 0 {
				sum += c
			} else {
				c = 0
			}
		}
		if sum > 0 {
			scale := float64(n) / sum
			for i, c := range t.counts {
				if c < 0 {
					c = 0
				}
				t.counts[i] = c * scale
			}
		}
		g.targets = append(g.targets, t)
	}
	return g
}

// Run applies the update rounds to ds in place and returns the
// per-round average L1 error (‖S−T‖₁ / n averaged over marginals),
// which decreases as the synthesis converges.
func (g *GUM) Run(ds *dataset.Encoded) []float64 {
	return g.run(ds, newEngine(g.cfg.Workers))
}

// run is Run on a caller-provided worker pool (the pipeline threads
// its engine through so stage timings capture GUM's busy time).
//
// Each round snapshots the dataset, plans every marginal's update
// pass against that snapshot concurrently, then applies the plans
// sequentially in marginal order. Planning — the O(records × attrs)
// hot path that dominates end-to-end runtime — is a pure function of
// (snapshot, target, alpha, per-pass RNG), so the fan-out cannot
// perturb the output: a pass's RNG derives from (Seed, round,
// marginal index), never from worker identity or completion order.
func (g *GUM) run(ds *dataset.Encoded, eng *engine) []float64 {
	n := ds.NumRows()
	if n == 0 || len(g.targets) == 0 {
		return nil
	}
	errs := make([]float64, 0, g.cfg.Iterations)
	alpha := g.cfg.InitAlpha
	snap := dataset.NewEncoded(ds.Names, ds.Domains, n)
	plans := make([]*gumPlan, len(g.targets))
	for it := 0; it < g.cfg.Iterations; it++ {
		for a := range ds.Cols {
			copy(snap.Cols[a], ds.Cols[a])
		}
		base := it * len(g.targets)
		eng.parallelFor(len(g.targets), func(ti int) {
			seed := taskSeed(g.cfg.Seed, "gum-update", base+ti)
			rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc908))
			plans[ti] = planUpdate(snap, g.targets[ti], alpha, g.cfg.DuplicateProb, rng)
		})
		var roundErr float64
		for ti, t := range g.targets {
			roundErr += plans[ti].l1
			applyPlan(ds, t.m, plans[ti])
		}
		errs = append(errs, roundErr/float64(len(g.targets))/float64(n))
		alpha *= g.cfg.AlphaDecay
	}
	return errs
}

// gumMove is one planned record rewrite: duplicate a full source row
// over r (row != nil, preserving the source's cross-marginal
// correlations), or overwrite r's marginal attributes with the codes
// of cell (row == nil). The duplicate captures the source record's
// snapshot codes at planning time, so applying a plan cannot be
// invalidated by an earlier marginal's moves in the same round.
type gumMove struct {
	r    int
	row  []int32
	cell int
}

// gumPlan is one marginal's update pass: the L1 error measured on the
// round snapshot and the record moves to apply.
type gumPlan struct {
	l1    float64
	moves []gumMove
}

// planUpdate computes one marginal's update pass against the round
// snapshot and returns the planned moves plus the L1 error before the
// update. It reads only ds and rng, so concurrent plans are safe and
// reproducible.
func planUpdate(ds *dataset.Encoded, t *target, alpha, dupProb float64, rng *rand.Rand) *gumPlan {
	n := ds.NumRows()
	m := t.m
	// Current cell of every record, accumulated column-by-column with
	// the marginal's precomputed strides (this pass runs once per
	// marginal per round over every record — it is the inner loop of
	// the ≈90%-of-runtime synthesis stage, so no per-row variadic
	// Index calls and no per-row stride recomputation).
	cellOf := make([]int, n)
	strides := m.Strides()
	for i, a := range m.Attrs {
		col := ds.Cols[a]
		s := strides[i]
		if i == 0 {
			for r, c := range col {
				cellOf[r] = int(c) * s
			}
			continue
		}
		for r, c := range col {
			cellOf[r] += int(c) * s
		}
	}
	// Sparse current counts.
	s := make(map[int]float64, n)
	for _, c := range cellOf {
		s[c]++
	}
	// L1 error and over/under split. Only cells with nonzero target
	// or nonzero current can contribute.
	// Dust filtering: noisy targets spread tiny fractional counts
	// over huge cell spaces after projection; gaps below half a
	// record cannot be satisfied by integer record moves and would
	// only soak up the move budget.
	const dust = 0.5
	var l1 float64
	type cellGap struct {
		cell int
		gap  float64
	}
	var over, under []cellGap
	seen := make(map[int]bool, len(s))
	for c, sc := range s {
		d := sc - t.counts[c]
		l1 += math.Abs(d)
		if d > dust {
			over = append(over, cellGap{c, d})
		} else if d < -dust {
			under = append(under, cellGap{c, -d})
		}
		seen[c] = true
	}
	for c, tc := range t.counts {
		if tc > dust && !seen[c] {
			l1 += tc
			under = append(under, cellGap{c, tc})
		}
	}
	plan := &gumPlan{l1: l1}
	if len(over) == 0 || len(under) == 0 || alpha <= 0 {
		return plan
	}
	// Deterministic order for reproducibility (maps iterate randomly;
	// gap ties must fall back to the cell index).
	sort.Slice(over, func(a, b int) bool { return over[a].cell < over[b].cell })
	sort.Slice(under, func(a, b int) bool {
		if under[a].gap != under[b].gap {
			return under[a].gap > under[b].gap
		}
		return under[a].cell < under[b].cell
	})

	// Pool of movable records from over-represented cells, capped at
	// alpha·excess per cell. Quotas use probabilistic rounding: with
	// ceil(), every cell would keep contributing ≥1 record per round
	// no matter how small alpha gets, and a large marginal set would
	// thrash forever instead of settling.
	overSet := make(map[int]float64, len(over))
	for _, o := range over {
		overSet[o.cell] = stochasticRound(rng, o.gap*alpha)
	}
	var pool []int
	for r := 0; r < n; r++ {
		if q, ok := overSet[cellOf[r]]; ok && q >= 1 {
			pool = append(pool, r)
			overSet[cellOf[r]] = q - 1
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// A representative record for each under cell enables the
	// duplicate operation.
	rep := make(map[int]int, len(under))
	for r := 0; r < n; r++ {
		c := cellOf[r]
		if _, ok := rep[c]; !ok {
			rep[c] = r
		}
	}

	pi := 0
	for _, u := range under {
		need := int(stochasticRound(rng, u.gap*alpha))
		for k := 0; k < need && pi < len(pool); k++ {
			r := pool[pi]
			pi++
			if q, ok := rep[u.cell]; ok && q != r && rng.Float64() < dupProb {
				row := make([]int32, ds.NumAttrs())
				for a := range row {
					row[a] = ds.Cols[a][q]
				}
				plan.moves = append(plan.moves, gumMove{r: r, row: row})
			} else {
				plan.moves = append(plan.moves, gumMove{r: r, cell: u.cell})
				rep[u.cell] = r
			}
		}
		if pi >= len(pool) {
			break
		}
	}
	return plan
}

// applyPlan executes one marginal's planned moves against the live
// dataset. Plans are applied in marginal order, so the result is
// independent of how the planning was scheduled.
func applyPlan(ds *dataset.Encoded, m *marginal.Marginal, p *gumPlan) {
	for _, mv := range p.moves {
		if mv.row != nil {
			// Duplicate: copy the planned full record, preserving the
			// correlations of attributes outside this marginal.
			for a := 0; a < ds.NumAttrs(); a++ {
				ds.Cols[a][mv.r] = mv.row[a]
			}
		} else {
			// Replace: overwrite only this marginal's attributes.
			codes := m.Cell(mv.cell)
			for i, a := range m.Attrs {
				ds.Cols[a][mv.r] = codes[i]
			}
		}
	}
}

// stochasticRound rounds x down, plus one with probability frac(x),
// so quotas are unbiased and vanish as the update rate decays.
func stochasticRound(rng *rand.Rand, x float64) float64 {
	fl := math.Floor(x)
	if rng.Float64() < x-fl {
		fl++
	}
	return fl
}

// InitIndependent builds the plain-GUM starting dataset: every
// attribute sampled independently from its published 1-way marginal.
func InitIndependent(names []string, domains []int, oneWay []*marginal.Marginal, n int, seed uint64) (*dataset.Encoded, error) {
	if len(oneWay) != len(domains) {
		return nil, fmt.Errorf("core: %d one-way marginals for %d attributes", len(oneWay), len(domains))
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xbb67ae8584caa73b))
	ds := dataset.NewEncoded(names, domains, n)
	for a := range domains {
		samp := newCatSampler(oneWay[a].Counts)
		col := ds.Cols[a]
		for r := 0; r < n; r++ {
			col[r] = int32(samp.Sample(rng))
		}
	}
	return ds, nil
}

// InitGUMMI builds NetDPSyn's marginal-initialized starting dataset
// (§3.4): the key attribute (the label) is sampled from its 1-way
// marginal, then every published marginal containing the key — taken
// in decreasing |Pearson correlation| order — assigns its remaining
// attributes conditionally on the key, and any attribute left
// unassigned falls back to its independent 1-way marginal. nInit
// caps how many key marginals are used (≤ 0 means all).
func InitGUMMI(names []string, domains []int, oneWay, published []*marginal.Marginal, keyAttr, n, nInit int, seed uint64) (*dataset.Encoded, error) {
	if keyAttr < 0 || keyAttr >= len(domains) {
		return nil, fmt.Errorf("core: key attribute %d out of range", keyAttr)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x3c6ef372fe94f82b))
	ds := dataset.NewEncoded(names, domains, n)

	// Key marginals ordered by |Pearson| (computed on the noisy
	// counts; no extra budget).
	type keyed struct {
		m    *marginal.Marginal
		corr float64
	}
	var key []keyed
	for _, m := range published {
		hasKey := false
		for _, a := range m.Attrs {
			if a == keyAttr {
				hasKey = true
				break
			}
		}
		if !hasKey || len(m.Attrs) < 2 {
			continue
		}
		corr := 0.0
		if len(m.Attrs) == 2 {
			c, err := m.PearsonCorr()
			if err == nil {
				corr = math.Abs(c)
			}
		} else {
			corr = 1 // multi-way key marginals are used first
		}
		key = append(key, keyed{m, corr})
	}
	sort.SliceStable(key, func(a, b int) bool { return key[a].corr > key[b].corr })
	if nInit > 0 && nInit < len(key) {
		key = key[:nInit]
	}

	// Sample the key attribute.
	keySamp := newCatSampler(oneWay[keyAttr].Counts)
	keyCol := ds.Cols[keyAttr]
	for r := 0; r < n; r++ {
		keyCol[r] = int32(keySamp.Sample(rng))
	}
	assigned := make([]bool, len(domains))
	assigned[keyAttr] = true

	// Conditional assignment from each key marginal.
	for _, km := range key {
		m := km.m
		newAttrs := make([]int, 0, len(m.Attrs))
		for _, a := range m.Attrs {
			if !assigned[a] {
				newAttrs = append(newAttrs, a)
			}
		}
		if len(newAttrs) == 0 {
			continue
		}
		cond, err := newConditionalSampler(m, keyAttr)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			cell := cond.Sample(rng, keyCol[r])
			codes := m.Cell(cell)
			for i, a := range m.Attrs {
				for _, na := range newAttrs {
					if a == na {
						ds.Cols[a][r] = codes[i]
					}
				}
			}
		}
		for _, a := range newAttrs {
			assigned[a] = true
		}
	}

	// Independent fallback for uncovered attributes.
	for a := range domains {
		if assigned[a] {
			continue
		}
		samp := newCatSampler(oneWay[a].Counts)
		col := ds.Cols[a]
		for r := 0; r < n; r++ {
			col[r] = int32(samp.Sample(rng))
		}
	}
	return ds, nil
}

// catSampler draws from a non-negative weight vector via CDF binary
// search.
type catSampler struct {
	cdf []float64
}

func newCatSampler(weights []float64) *catSampler {
	cdf := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cdf[i] = total
	}
	if total <= 0 {
		for i := range cdf {
			cdf[i] = float64(i+1) / float64(len(cdf))
		}
		return &catSampler{cdf: cdf}
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &catSampler{cdf: cdf}
}

func (s *catSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// conditionalSampler draws a full marginal cell conditioned on the
// key attribute's value.
type conditionalSampler struct {
	perKey []*catSampler // indexed by key code; samples a cell offset
	cells  [][]int       // cell indices behind each sampler
}

func newConditionalSampler(m *marginal.Marginal, keyAttr int) (*conditionalSampler, error) {
	keyPos := -1
	for i, a := range m.Attrs {
		if a == keyAttr {
			keyPos = i
			break
		}
	}
	if keyPos < 0 {
		return nil, fmt.Errorf("core: marginal %v lacks key attribute %d", m.Attrs, keyAttr)
	}
	dom := m.Domains[keyPos]
	cells := make([][]int, dom)
	weights := make([][]float64, dom)
	for idx, c := range m.Counts {
		codes := m.Cell(idx)
		k := int(codes[keyPos])
		cells[k] = append(cells[k], idx)
		if c < 0 {
			c = 0
		}
		weights[k] = append(weights[k], c)
	}
	cs := &conditionalSampler{perKey: make([]*catSampler, dom), cells: cells}
	for k := 0; k < dom; k++ {
		cs.perKey[k] = newCatSampler(weights[k])
	}
	return cs, nil
}

// Sample returns a flattened cell index of the marginal whose key
// code equals k.
func (c *conditionalSampler) Sample(rng *rand.Rand, k int32) int {
	ki := int(k)
	if ki < 0 || ki >= len(c.perKey) || len(c.cells[ki]) == 0 {
		ki = 0
	}
	return c.cells[ki][c.perKey[ki].Sample(rng)]
}
