package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/binning"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/dp"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// Config configures the full NetDPSyn pipeline.
type Config struct {
	// Epsilon and Delta form the (ε, δ)-DP target; the paper defaults
	// to ε = 2.0, δ = 1e-5.
	Epsilon, Delta float64
	// BudgetSplit divides the zCDP budget ρ between data-dependent
	// binning, marginal selection, and marginal publication; the
	// paper uses 0.1 / 0.1 / 0.8.
	BudgetSplit [3]float64
	// Binning tunes the pre-processing discretization.
	Binning binning.Config
	// GUM tunes the record-synthesis loop.
	GUM GUMConfig
	// KeyAttr names the attribute GUMMI initializes around (the
	// classification label). Empty selects the schema's label field.
	KeyAttr string
	// NInitMarginals caps the number of key marginals GUMMI uses
	// (≤ 0 means all).
	NInitMarginals int
	// UseGUMMI selects marginal initialization (true, the NetDPSyn
	// default) or plain-GUM independent initialization (false; the
	// Figure 8 ablation).
	UseGUMMI bool
	// Tau is the protocol-rule probability threshold (paper: 0.1).
	Tau float64
	// CombineMaxCells bounds the size of merged multi-way marginals;
	// MaxCombineAttrs bounds their arity.
	CombineMaxCells float64
	MaxCombineAttrs int
	// SynthRecords fixes the synthetic record count; 0 derives it
	// from the noisy marginal totals.
	SynthRecords int
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// Workers bounds the staged engine's worker pool, which
	// parallelizes pair scoring, marginal publication, GUM update
	// planning, and windowed synthesis (≤ 0 means all available
	// cores, runtime.GOMAXPROCS(0)). The output is byte-identical
	// across worker counts for a fixed Seed: parallel tasks derive
	// their randomness from (Seed, stage, task index), never from
	// scheduling (see engine.go).
	Workers int
	// UserGroupSize switches from record-level to user-level DP: a
	// "user" is assumed to contribute at most this many records, so
	// every mechanism's sensitivity is scaled accordingly (noise
	// grows ∝ the group size). 0 or 1 means record-level DP, the
	// paper's granularity; Appendix G names user-level DP as the
	// natural strengthening.
	UserGroupSize int
	// DisableTSDiff, DisableConsistency, and DisableProtocolRules
	// switch off individual NetDPSyn additions for ablation studies.
	DisableTSDiff        bool
	DisableConsistency   bool
	DisableProtocolRules bool
	// Metrics optionally wires engine-level observability (worker
	// occupancy, live per-stage timings) into every run of this
	// pipeline; nil disables it at zero cost. It never affects
	// synthesis output and is ignored by configuration identity.
	Metrics *EngineMetrics
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Epsilon:         2.0,
		Delta:           1e-5,
		BudgetSplit:     [3]float64{0.1, 0.1, 0.8},
		Binning:         binning.DefaultConfig(),
		GUM:             DefaultGUMConfig(),
		UseGUMMI:        true,
		Tau:             0.1,
		CombineMaxCells: 1 << 18,
		MaxCombineAttrs: 3,
		Seed:            1,
	}
}

// Report carries diagnostics from a pipeline run.
type Report struct {
	Rho              float64
	RhoBin           float64
	RhoSelect        float64
	RhoPublish       float64
	SelectedSets     [][]string
	SelectionError   float64
	ConsistencyEdits int
	GUMErrors        []float64
	SynthRecords     int
	// Durations is the wall-clock time per named stage.
	Durations map[string]time.Duration
	// Stages refines Durations with the wall/busy split per stage, so
	// the speedup from Config.Workers is observable: Busy/Wall is the
	// effective parallelism the stage achieved.
	Stages map[string]StageTiming
	// Spans is the ordered trace of the run: one entry per executed
	// stage, in execution order, with absolute start times — the raw
	// material for a job-level trace where the Stages map only keeps
	// aggregates.
	Spans []StageSpan
}

// StageSpan is one ordered entry of a pipeline run's trace.
type StageSpan struct {
	// Name is the stage name (a synthStages entry).
	Name string
	// Start is the wall-clock instant the stage began.
	Start time.Time
	// Wall and Busy split the stage's cost as in StageTiming.
	Wall, Busy time.Duration
}

// Result is the output of a pipeline run.
type Result struct {
	// Table is the synthesized raw trace with the input schema
	// (minus the auxiliary tsdiff attribute).
	Table *dataset.Table
	// Encoded is the synthesized binned dataset.
	Encoded *dataset.Encoded
	// Encoder is the binning used, for callers that need to encode
	// further data in the same space.
	Encoder *binning.Encoder
	// Report carries diagnostics.
	Report Report
}

// Pipeline is a reusable NetDPSyn synthesizer.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates the configuration and returns a pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Epsilon <= 0 || cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("core: invalid privacy target eps=%v delta=%v", cfg.Epsilon, cfg.Delta)
	}
	var s float64
	for _, w := range cfg.BudgetSplit {
		if w < 0 {
			return nil, fmt.Errorf("core: negative budget weight %v", w)
		}
		s += w
	}
	if s <= 0 {
		return nil, fmt.Errorf("core: empty budget split")
	}
	if cfg.GUM.Iterations <= 0 {
		return nil, fmt.Errorf("core: GUM iterations must be positive")
	}
	return &Pipeline{cfg: cfg}, nil
}

// synthState carries one run's intermediates between the named
// stages. Each stage reads the fields of its predecessors and fills
// its own; nothing outside the stage functions mutates it.
type synthState struct {
	input *dataset.Table

	// stageBudget
	acct  *dp.Accountant
	parts []float64

	// stagePreprocess
	work    *dataset.Table
	hasTS   bool
	enc     *binning.Encoder
	encoded *dataset.Encoded
	oneWay  []*marginal.Marginal

	// stageSelect
	sets [][]int

	// stagePublish
	published []*marginal.Marginal

	// stagePostprocess
	nHat float64

	// stageRecordSynthesis
	synth *dataset.Encoded

	// stageDecode
	out *dataset.Table

	report Report
}

// synthStage is one named step of Algorithm 1. Stages run strictly in
// order; parallelism lives inside them, bounded by the engine.
type synthStage struct {
	name string
	fn   func(*Pipeline, *engine, *synthState) error
}

// synthStages is the stage sequence of Pipeline.Synthesize. The names
// key Report.Durations and Report.Stages.
var synthStages = []synthStage{
	{"preprocess", (*Pipeline).stagePreprocess},
	{"select", (*Pipeline).stageSelect},
	{"publish", (*Pipeline).stagePublish},
	{"postprocess", (*Pipeline).stagePostprocess},
	{"gum", (*Pipeline).stageRecordSynthesis},
	{"decode", (*Pipeline).stageDecode},
}

// Synthesize runs the full pipeline of Algorithm 1 on a raw trace
// table and returns the synthesized trace. The stages execute
// sequentially; their internal hot loops fan out over a worker pool
// sized by Config.Workers (see engine.go for the architecture and the
// determinism contract).
func (p *Pipeline) Synthesize(t *dataset.Table) (*Result, error) {
	return p.SynthesizeCtx(context.Background(), t)
}

// SynthesizeCtx is Synthesize with a context that parents the
// per-stage pprof labels: labels already on ctx (a serving daemon's
// job_kind/dataset, say) merge with each stage's "stage" label
// instead of being replaced, so `pprof -tagfocus
// dataset=X,stage=gum` slices engine work by both axes. The context
// carries labels only — it is not a cancellation signal.
func (p *Pipeline) SynthesizeCtx(ctx context.Context, t *dataset.Table) (*Result, error) {
	eng := newEngine(p.cfg.Workers)
	if p.cfg.Metrics != nil {
		eng.active = p.cfg.Metrics.ActiveWorkers
	}
	st := &synthState{
		input: t,
		report: Report{
			Durations: make(map[string]time.Duration),
			Stages:    make(map[string]StageTiming),
		},
	}
	if err := p.stageBudget(st); err != nil {
		return nil, err
	}
	for _, s := range synthStages {
		// Each stage — bookkeeping and StageDone hook included — runs
		// under a pprof "stage" label: engine goroutines spawned inside
		// inherit it, so CPU profiles from the daemon's -pprof endpoint
		// attribute samples per stage out of the box
		// (`pprof -tagfocus stage=gum`). StageDone firing inside the
		// labeled region is part of the contract (obs tests read the
		// current goroutine's labels from the hook). Parenting the Do
		// on ctx preserves caller labels: pprof.Do REPLACES the
		// goroutine's label set with the ctx's plus the new ones, so a
		// Background parent here would wipe a daemon's job labels for
		// the stage and — via Do's deferred restore — for the rest of
		// the job.
		var err error
		pprof.Do(ctx, pprof.Labels("stage", s.name), func(context.Context) {
			start := time.Now()
			busy0 := eng.busyTime()
			if err = s.fn(p, eng, st); err != nil {
				return
			}
			wall := time.Since(start)
			busy := eng.busyTime() - busy0
			if busy == 0 {
				busy = wall // no parallel section: the stage ran single-threaded
			}
			st.report.Durations[s.name] += wall
			prev := st.report.Stages[s.name]
			st.report.Stages[s.name] = StageTiming{Wall: prev.Wall + wall, Busy: prev.Busy + busy}
			st.report.Spans = append(st.report.Spans, StageSpan{Name: s.name, Start: start, Wall: wall, Busy: busy})
			if p.cfg.Metrics != nil && p.cfg.Metrics.StageDone != nil {
				p.cfg.Metrics.StageDone(s.name, wall, busy)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return &Result{Table: st.out, Encoded: st.synth, Encoder: st.enc, Report: st.report}, nil
}

// stageBudget converts (ε, δ) to zCDP and splits the working budget.
// User-level DP scales every mechanism's sensitivity by the group
// size k; since the Gaussian mechanism's ρ cost grows as
// sensitivity², dividing the working budget by k² is equivalent and
// keeps the later stages unchanged.
func (p *Pipeline) stageBudget(st *synthState) error {
	cfg := p.cfg
	rho, err := dp.RhoFromEpsDelta(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return err
	}
	workRho := rho
	if cfg.UserGroupSize > 1 {
		k := float64(cfg.UserGroupSize)
		workRho = rho / (k * k)
	}
	acct, err := dp.NewAccountant(workRho)
	if err != nil {
		return err
	}
	parts := acct.Split(cfg.BudgetSplit[0], cfg.BudgetSplit[1], cfg.BudgetSplit[2])
	st.acct, st.parts = acct, parts
	st.report.Rho, st.report.RhoBin, st.report.RhoSelect, st.report.RhoPublish = workRho, parts[0], parts[1], parts[2]
	return nil
}

// stagePreprocess is steps 1–2 of Algorithm 1: temporal augmentation
// (tsdiff), data-dependent binning, and encoding. The binning pass
// also publishes the 1-way marginals this stage extracts.
func (p *Pipeline) stagePreprocess(eng *engine, st *synthState) error {
	cfg := p.cfg
	work := st.input
	st.hasTS = st.input.Schema().Has(trace.FieldTS)
	if st.hasTS && !cfg.DisableTSDiff {
		var err error
		work, err = binning.AddTSDiff(st.input, trace.FieldTS, trace.FieldTSDiff, fiveTuple(st.input.Schema()))
		if err != nil {
			return fmt.Errorf("core: tsdiff: %w", err)
		}
	}
	if err := st.acct.Spend(st.parts[0]); err != nil {
		return err
	}
	// Scale the per-attribute bin cap with the record count: a bin
	// needs tens of expected records to carry signal, and pair
	// marginals must stay small relative to n for GUM to fit them.
	// (At the paper's 1M-record scale the configured cap dominates.)
	binCfg := cfg.Binning
	if adaptive := work.NumRows() / 30; adaptive < binCfg.MaxBinsPerAttr {
		if adaptive < 32 {
			adaptive = 32
		}
		binCfg.MaxBinsPerAttr = adaptive
	}
	enc, err := binning.Build(work, binCfg, st.parts[0], cfg.Seed^0xb1)
	if err != nil {
		return err
	}
	encoded, err := enc.Encode(work)
	if err != nil {
		return err
	}
	oneWay := make([]*marginal.Marginal, len(enc.Attrs))
	for i := range enc.Attrs {
		m := marginal.New([]int{i}, []int{enc.Attrs[i].Domain()})
		copy(m.Counts, enc.Attrs[i].NoisyCounts)
		m.Sigma = enc.Attrs[i].Sigma
		oneWay[i] = m
	}
	st.work, st.enc, st.encoded, st.oneWay = work, enc, encoded, oneWay
	return nil
}

// stageSelect is step 3: DP pair scores and DenseMarg selection. The
// per-pair InDif computation — quadratic in attributes, linear in
// records — fans out over the pool.
func (p *Pipeline) stageSelect(eng *engine, st *synthState) error {
	cfg := p.cfg
	if err := st.acct.Spend(st.parts[1]); err != nil {
		return err
	}
	scores := marginal.NewPairScores(st.encoded.NumAttrs())
	eng.parallelFor(len(scores.Pairs), func(i int) {
		p := scores.Pairs[i]
		scores.Scores[i] = marginal.InDif(st.encoded, p[0], p[1])
	})
	if err := scores.Perturb(st.parts[1], cfg.Seed^0xb2); err != nil {
		return err
	}
	capacity := 8 * float64(st.encoded.NumRows())
	sel := SelectMarginalsBounded(scores, st.encoded.Domains, st.parts[2], capacity, 3*st.encoded.NumAttrs())
	st.report.SelectionError = sel.TotalError
	combineCells := cfg.CombineMaxCells
	if combineCells > capacity {
		combineCells = capacity
	}
	st.sets = Combine(sel.Selected, st.encoded.Domains, combineCells, cfg.MaxCombineAttrs)
	for _, s := range st.sets {
		names := make([]string, len(s))
		for i, a := range s {
			names[i] = st.encoded.Names[a]
		}
		st.report.SelectedSets = append(st.report.SelectedSets, names)
	}
	return nil
}

// stagePublish is step 4: publish the selected marginals with
// ρ_i ∝ c_i^(2/3), each set computed and perturbed on its own worker.
func (p *Pipeline) stagePublish(eng *engine, st *synthState) error {
	if err := st.acct.Spend(st.parts[2]); err != nil {
		return err
	}
	published, err := publishSets(eng, st.encoded, st.sets, st.parts[2], p.cfg.Seed^0xb3)
	if err != nil {
		return err
	}
	st.published = published
	return nil
}

// stagePostprocess is step 5: simplex projection, cross-marginal
// consistency, and protocol-rule edits over the published marginals.
func (p *Pipeline) stagePostprocess(eng *engine, st *synthState) error {
	cfg := p.cfg
	all := append(append([]*marginal.Marginal(nil), st.oneWay...), st.published...)
	nHat := consensusTotal(all)
	for _, m := range all {
		m.NormSub(nHat)
	}
	if !cfg.DisableConsistency {
		if err := marginal.ConsistAttributes(all, 3); err != nil {
			return err
		}
		for _, m := range all {
			m.NormSub(nHat)
		}
	}
	if !cfg.DisableProtocolRules {
		rules := protocolRules(st.work, st.enc, cfg.Tau)
		edits, err := marginal.ApplyRules(all, rules)
		if err != nil {
			return err
		}
		st.report.ConsistencyEdits = edits
	}
	st.nHat = nHat
	return nil
}

// stageRecordSynthesis is step 6: GUMMI (or independent)
// initialization followed by the GUM update loop, whose per-marginal
// planning passes fan out over the pool.
func (p *Pipeline) stageRecordSynthesis(eng *engine, st *synthState) error {
	cfg := p.cfg
	nSynth := cfg.SynthRecords
	if nSynth <= 0 {
		nSynth = int(math.Round(st.nHat))
	}
	if nSynth < 1 {
		nSynth = 1
	}
	st.report.SynthRecords = nSynth

	var init *dataset.Encoded
	var err error
	if cfg.UseGUMMI {
		keyIdx := p.keyAttrIndex(st.work.Schema(), st.encoded)
		init, err = InitGUMMI(st.encoded.Names, st.encoded.Domains, st.oneWay, st.published, keyIdx, nSynth, cfg.NInitMarginals, cfg.Seed^0xb4)
	} else {
		init, err = InitIndependent(st.encoded.Names, st.encoded.Domains, st.oneWay, nSynth, cfg.Seed^0xb4)
	}
	if err != nil {
		return err
	}
	gcfg := cfg.GUM
	gcfg.Seed = cfg.Seed ^ 0xb5
	gcfg.Workers = cfg.Workers
	gum := NewGUM(st.published, nSynth, gcfg)
	st.report.GUMErrors = gum.run(init, eng)
	st.synth = init
	return nil
}

// stageDecode maps the synthesized binned dataset back to a raw trace
// table in the input schema.
func (p *Pipeline) stageDecode(eng *engine, st *synthState) error {
	cfg := p.cfg
	decodeOpts := binning.DecodeOptions{
		Seed:    cfg.Seed ^ 0xb6,
		GroupBy: fiveTuple(st.work.Schema()),
		DropAux: true,
		Constraints: []binning.GreaterEq{
			{A: trace.FieldByt, B: trace.FieldPkt},
		},
	}
	if st.hasTS {
		decodeOpts.TSField = trace.FieldTS
		if !cfg.DisableTSDiff {
			decodeOpts.TSDiffField = trace.FieldTSDiff
		}
	}
	out, err := st.enc.Decode(st.synth, decodeOpts)
	if err != nil {
		return err
	}
	st.out = out
	return nil
}

// fiveTuple returns the identifier fields present in the schema.
func fiveTuple(s *dataset.Schema) []string {
	var out []string
	for _, name := range []string{trace.FieldSrcIP, trace.FieldDstIP, trace.FieldSrcPort, trace.FieldDstPort, trace.FieldProto} {
		if s.Has(name) {
			out = append(out, name)
		}
	}
	return out
}

// keyAttrIndex resolves the GUMMI key attribute: explicit config,
// then the schema label field, then attribute 0.
func (p *Pipeline) keyAttrIndex(s *dataset.Schema, e *dataset.Encoded) int {
	if p.cfg.KeyAttr != "" {
		if i := e.Index(p.cfg.KeyAttr); i >= 0 {
			return i
		}
	}
	if li := s.LabelIndex(); li >= 0 {
		if i := e.Index(s.Fields[li].Name); i >= 0 {
			return i
		}
	}
	return 0
}

// publishSets computes and publishes the selected marginals under the
// unequal allocation ρ_i ∝ c_i^(2/3). Each set is independent — its
// noise seed is a pure function of the stage seed and set index — so
// the fan-out is deterministic for any worker count.
func publishSets(eng *engine, e *dataset.Encoded, sets [][]int, rhoPublish float64, seed uint64) ([]*marginal.Marginal, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	cells := make([]float64, len(sets))
	var denom float64
	for i, s := range sets {
		cells[i] = cellsOf(e.Domains, s)
		denom += math.Pow(cells[i], 2.0/3.0)
	}
	out := make([]*marginal.Marginal, len(sets))
	err := eng.parallelForErr(len(sets), func(i int) error {
		rho := rhoPublish * math.Pow(cells[i], 2.0/3.0) / denom
		m := marginal.Compute(e, sets[i])
		pub, err := m.Publish(rho, seed+uint64(i)*104729)
		if err != nil {
			return err
		}
		out[i] = pub
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// consensusTotal estimates the record count from the noisy marginal
// totals, weighting each marginal by the inverse variance of its
// total (cells·σ²).
func consensusTotal(ms []*marginal.Marginal) float64 {
	var num, den float64
	for _, m := range ms {
		v := m.Sigma * m.Sigma * float64(m.Cells())
		if v <= 0 {
			v = 1e-6
		}
		w := 1 / v
		num += m.Total() * w
		den += w
	}
	if den <= 0 {
		return 0
	}
	t := num / den
	if t < 0 {
		return 0
	}
	return t
}

// protocolRules derives the τ-thresholded consistency rules from the
// schema and binning (§3.3): FTP/SSH control ports imply TCP, DNS on
// port 53 is not ICMP, and byt ≥ pkt.
func protocolRules(t *dataset.Table, enc *binning.Encoder, tau float64) []marginal.Rule {
	s := t.Schema()
	var rules []marginal.Rule
	attrIdx := func(name string) int { return s.Index(name) }

	protoIdx := attrIdx(trace.FieldProto)
	dportIdx := attrIdx(trace.FieldDstPort)
	if protoIdx >= 0 && dportIdx >= 0 {
		dict := t.Dict(protoIdx)
		tcp := -1
		if dict != nil {
			if c, ok := dict.Lookup("TCP"); ok {
				tcp = c
			}
		}
		if tcp >= 0 {
			dpBins := enc.Attrs[dportIdx].Bins
			tcpOnly := func(port int64) func(dp, pr int32) bool {
				return func(dp, pr int32) bool {
					b := dpBins[int(dp)]
					if b.Lo == port && b.Hi == port {
						return int(pr) == tcp
					}
					return true
				}
			}
			rules = append(rules,
				marginal.Rule{A: dportIdx, B: protoIdx, Allowed: tcpOnly(21), Tau: tau, Name: "ftp-requires-tcp"},
				marginal.Rule{A: dportIdx, B: protoIdx, Allowed: tcpOnly(22), Tau: tau, Name: "ssh-requires-tcp"},
			)
		}
	}

	bytIdx, pktIdx := attrIdx(trace.FieldByt), attrIdx(trace.FieldPkt)
	if bytIdx >= 0 && pktIdx >= 0 {
		bytBins := enc.Attrs[bytIdx].Bins
		pktBins := enc.Attrs[pktIdx].Bins
		rules = append(rules, marginal.Rule{
			A: bytIdx, B: pktIdx, Tau: 1.0, Name: "bytes-at-least-packets",
			Allowed: func(by, pk int32) bool {
				// A packet has at least one byte: impossible if even
				// the largest byte count in the bin is below the
				// smallest packet count.
				return bytBins[int(by)].Hi >= pktBins[int(pk)].Lo
			},
		})
	}
	return rules
}

// SortedAttrNames is a helper for diagnostics: the names of an
// attribute set in schema order.
func SortedAttrNames(e *dataset.Encoded, attrs []int) []string {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	names := make([]string, len(s))
	for i, a := range s {
		names[i] = e.Names[a]
	}
	return names
}
