package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/binning"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/dp"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// Config configures the full NetDPSyn pipeline.
type Config struct {
	// Epsilon and Delta form the (ε, δ)-DP target; the paper defaults
	// to ε = 2.0, δ = 1e-5.
	Epsilon, Delta float64
	// BudgetSplit divides the zCDP budget ρ between data-dependent
	// binning, marginal selection, and marginal publication; the
	// paper uses 0.1 / 0.1 / 0.8.
	BudgetSplit [3]float64
	// Binning tunes the pre-processing discretization.
	Binning binning.Config
	// GUM tunes the record-synthesis loop.
	GUM GUMConfig
	// KeyAttr names the attribute GUMMI initializes around (the
	// classification label). Empty selects the schema's label field.
	KeyAttr string
	// NInitMarginals caps the number of key marginals GUMMI uses
	// (≤ 0 means all).
	NInitMarginals int
	// UseGUMMI selects marginal initialization (true, the NetDPSyn
	// default) or plain-GUM independent initialization (false; the
	// Figure 8 ablation).
	UseGUMMI bool
	// Tau is the protocol-rule probability threshold (paper: 0.1).
	Tau float64
	// CombineMaxCells bounds the size of merged multi-way marginals;
	// MaxCombineAttrs bounds their arity.
	CombineMaxCells float64
	MaxCombineAttrs int
	// SynthRecords fixes the synthetic record count; 0 derives it
	// from the noisy marginal totals.
	SynthRecords int
	// Seed makes the whole pipeline deterministic.
	Seed uint64
	// UserGroupSize switches from record-level to user-level DP: a
	// "user" is assumed to contribute at most this many records, so
	// every mechanism's sensitivity is scaled accordingly (noise
	// grows ∝ the group size). 0 or 1 means record-level DP, the
	// paper's granularity; Appendix G names user-level DP as the
	// natural strengthening.
	UserGroupSize int
	// DisableTSDiff, DisableConsistency, and DisableProtocolRules
	// switch off individual NetDPSyn additions for ablation studies.
	DisableTSDiff        bool
	DisableConsistency   bool
	DisableProtocolRules bool
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Epsilon:         2.0,
		Delta:           1e-5,
		BudgetSplit:     [3]float64{0.1, 0.1, 0.8},
		Binning:         binning.DefaultConfig(),
		GUM:             DefaultGUMConfig(),
		UseGUMMI:        true,
		Tau:             0.1,
		CombineMaxCells: 1 << 18,
		MaxCombineAttrs: 3,
		Seed:            1,
	}
}

// Report carries diagnostics from a pipeline run.
type Report struct {
	Rho              float64
	RhoBin           float64
	RhoSelect        float64
	RhoPublish       float64
	SelectedSets     [][]string
	SelectionError   float64
	ConsistencyEdits int
	GUMErrors        []float64
	SynthRecords     int
	Durations        map[string]time.Duration
}

// Result is the output of a pipeline run.
type Result struct {
	// Table is the synthesized raw trace with the input schema
	// (minus the auxiliary tsdiff attribute).
	Table *dataset.Table
	// Encoded is the synthesized binned dataset.
	Encoded *dataset.Encoded
	// Encoder is the binning used, for callers that need to encode
	// further data in the same space.
	Encoder *binning.Encoder
	// Report carries diagnostics.
	Report Report
}

// Pipeline is a reusable NetDPSyn synthesizer.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates the configuration and returns a pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Epsilon <= 0 || cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("core: invalid privacy target eps=%v delta=%v", cfg.Epsilon, cfg.Delta)
	}
	var s float64
	for _, w := range cfg.BudgetSplit {
		if w < 0 {
			return nil, fmt.Errorf("core: negative budget weight %v", w)
		}
		s += w
	}
	if s <= 0 {
		return nil, fmt.Errorf("core: empty budget split")
	}
	if cfg.GUM.Iterations <= 0 {
		return nil, fmt.Errorf("core: GUM iterations must be positive")
	}
	return &Pipeline{cfg: cfg}, nil
}

// Synthesize runs the full pipeline of Algorithm 1 on a raw trace
// table and returns the synthesized trace.
func (p *Pipeline) Synthesize(t *dataset.Table) (*Result, error) {
	cfg := p.cfg
	report := Report{Durations: make(map[string]time.Duration)}
	timer := func(name string, start time.Time) {
		report.Durations[name] += time.Since(start)
	}

	// Budget conversion and split. User-level DP scales every
	// mechanism's sensitivity by the group size k; since the Gaussian
	// mechanism's ρ cost grows as sensitivity², dividing the working
	// budget by k² is equivalent and keeps the code below unchanged.
	rho, err := dp.RhoFromEpsDelta(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return nil, err
	}
	workRho := rho
	if cfg.UserGroupSize > 1 {
		k := float64(cfg.UserGroupSize)
		workRho = rho / (k * k)
	}
	acct, err := dp.NewAccountant(workRho)
	if err != nil {
		return nil, err
	}
	parts := acct.Split(cfg.BudgetSplit[0], cfg.BudgetSplit[1], cfg.BudgetSplit[2])
	report.Rho, report.RhoBin, report.RhoSelect, report.RhoPublish = workRho, parts[0], parts[1], parts[2]

	// Step 1-2: temporal augmentation (tsdiff), then binning.
	start := time.Now()
	work := t
	hasTS := t.Schema().Has(trace.FieldTS)
	if hasTS && !cfg.DisableTSDiff {
		work, err = binning.AddTSDiff(t, trace.FieldTS, trace.FieldTSDiff, fiveTuple(t.Schema()))
		if err != nil {
			return nil, fmt.Errorf("core: tsdiff: %w", err)
		}
	}
	if err := acct.Spend(parts[0]); err != nil {
		return nil, err
	}
	// Scale the per-attribute bin cap with the record count: a bin
	// needs tens of expected records to carry signal, and pair
	// marginals must stay small relative to n for GUM to fit them.
	// (At the paper's 1M-record scale the configured cap dominates.)
	binCfg := cfg.Binning
	if adaptive := work.NumRows() / 30; adaptive < binCfg.MaxBinsPerAttr {
		if adaptive < 32 {
			adaptive = 32
		}
		binCfg.MaxBinsPerAttr = adaptive
	}
	enc, err := binning.Build(work, binCfg, parts[0], cfg.Seed^0xb1)
	if err != nil {
		return nil, err
	}
	encoded, err := enc.Encode(work)
	if err != nil {
		return nil, err
	}
	timer("preprocess", start)

	// One-way marginals were published by the binning pass.
	oneWay := make([]*marginal.Marginal, len(enc.Attrs))
	for i := range enc.Attrs {
		m := marginal.New([]int{i}, []int{enc.Attrs[i].Domain()})
		copy(m.Counts, enc.Attrs[i].NoisyCounts)
		m.Sigma = enc.Attrs[i].Sigma
		oneWay[i] = m
	}

	// Step 3: DP pair scores and DenseMarg selection.
	start = time.Now()
	if err := acct.Spend(parts[1]); err != nil {
		return nil, err
	}
	scores, err := marginal.ComputePairScores(encoded, parts[1], cfg.Seed^0xb2)
	if err != nil {
		return nil, err
	}
	capacity := 8 * float64(encoded.NumRows())
	sel := SelectMarginalsBounded(scores, encoded.Domains, parts[2], capacity, 3*encoded.NumAttrs())
	report.SelectionError = sel.TotalError
	combineCells := cfg.CombineMaxCells
	if combineCells > capacity {
		combineCells = capacity
	}
	sets := Combine(sel.Selected, encoded.Domains, combineCells, cfg.MaxCombineAttrs)
	for _, s := range sets {
		names := make([]string, len(s))
		for i, a := range s {
			names[i] = encoded.Names[a]
		}
		report.SelectedSets = append(report.SelectedSets, names)
	}
	timer("select", start)

	// Step 4: publish the selected marginals with ρ_i ∝ c_i^(2/3).
	start = time.Now()
	if err := acct.Spend(parts[2]); err != nil {
		return nil, err
	}
	published, err := publishSets(encoded, sets, parts[2], cfg.Seed^0xb3)
	if err != nil {
		return nil, err
	}
	timer("publish", start)

	// Step 5: post-processing — simplex projection, consistency,
	// protocol rules.
	start = time.Now()
	all := append(append([]*marginal.Marginal(nil), oneWay...), published...)
	nHat := consensusTotal(all)
	for _, m := range all {
		m.NormSub(nHat)
	}
	if !cfg.DisableConsistency {
		if err := marginal.ConsistAttributes(all, 3); err != nil {
			return nil, err
		}
		for _, m := range all {
			m.NormSub(nHat)
		}
	}
	if !cfg.DisableProtocolRules {
		rules := protocolRules(work, enc, cfg.Tau)
		edits, err := marginal.ApplyRules(all, rules)
		if err != nil {
			return nil, err
		}
		report.ConsistencyEdits = edits
	}
	timer("postprocess", start)

	// Step 6: record synthesis (GUMMI or GUM) + decoding.
	start = time.Now()
	nSynth := cfg.SynthRecords
	if nSynth <= 0 {
		nSynth = int(math.Round(nHat))
	}
	if nSynth < 1 {
		nSynth = 1
	}
	report.SynthRecords = nSynth

	var init *dataset.Encoded
	if cfg.UseGUMMI {
		keyIdx := p.keyAttrIndex(work.Schema(), encoded)
		init, err = InitGUMMI(encoded.Names, encoded.Domains, oneWay, published, keyIdx, nSynth, cfg.NInitMarginals, cfg.Seed^0xb4)
	} else {
		init, err = InitIndependent(encoded.Names, encoded.Domains, oneWay, nSynth, cfg.Seed^0xb4)
	}
	if err != nil {
		return nil, err
	}
	gum := NewGUM(published, nSynth, withSeed(cfg.GUM, cfg.Seed^0xb5))
	report.GUMErrors = gum.Run(init)
	timer("gum", start)

	start = time.Now()
	decodeOpts := binning.DecodeOptions{
		Seed:    cfg.Seed ^ 0xb6,
		GroupBy: fiveTuple(work.Schema()),
		DropAux: true,
		Constraints: []binning.GreaterEq{
			{A: trace.FieldByt, B: trace.FieldPkt},
		},
	}
	if hasTS {
		decodeOpts.TSField = trace.FieldTS
		if !cfg.DisableTSDiff {
			decodeOpts.TSDiffField = trace.FieldTSDiff
		}
	}
	out, err := enc.Decode(init, decodeOpts)
	if err != nil {
		return nil, err
	}
	timer("decode", start)

	return &Result{Table: out, Encoded: init, Encoder: enc, Report: report}, nil
}

func withSeed(g GUMConfig, seed uint64) GUMConfig {
	g.Seed = seed
	return g
}

// fiveTuple returns the identifier fields present in the schema.
func fiveTuple(s *dataset.Schema) []string {
	var out []string
	for _, name := range []string{trace.FieldSrcIP, trace.FieldDstIP, trace.FieldSrcPort, trace.FieldDstPort, trace.FieldProto} {
		if s.Has(name) {
			out = append(out, name)
		}
	}
	return out
}

// keyAttrIndex resolves the GUMMI key attribute: explicit config,
// then the schema label field, then attribute 0.
func (p *Pipeline) keyAttrIndex(s *dataset.Schema, e *dataset.Encoded) int {
	if p.cfg.KeyAttr != "" {
		if i := e.Index(p.cfg.KeyAttr); i >= 0 {
			return i
		}
	}
	if li := s.LabelIndex(); li >= 0 {
		if i := e.Index(s.Fields[li].Name); i >= 0 {
			return i
		}
	}
	return 0
}

// publishSets computes and publishes the selected marginals under the
// unequal allocation ρ_i ∝ c_i^(2/3).
func publishSets(e *dataset.Encoded, sets [][]int, rhoPublish float64, seed uint64) ([]*marginal.Marginal, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	cells := make([]float64, len(sets))
	var denom float64
	for i, s := range sets {
		cells[i] = cellsOf(e.Domains, s)
		denom += math.Pow(cells[i], 2.0/3.0)
	}
	var out []*marginal.Marginal
	for i, s := range sets {
		rho := rhoPublish * math.Pow(cells[i], 2.0/3.0) / denom
		m := marginal.Compute(e, s)
		pub, err := m.Publish(rho, seed+uint64(i)*104729)
		if err != nil {
			return nil, err
		}
		out = append(out, pub)
	}
	return out, nil
}

// consensusTotal estimates the record count from the noisy marginal
// totals, weighting each marginal by the inverse variance of its
// total (cells·σ²).
func consensusTotal(ms []*marginal.Marginal) float64 {
	var num, den float64
	for _, m := range ms {
		v := m.Sigma * m.Sigma * float64(m.Cells())
		if v <= 0 {
			v = 1e-6
		}
		w := 1 / v
		num += m.Total() * w
		den += w
	}
	if den <= 0 {
		return 0
	}
	t := num / den
	if t < 0 {
		return 0
	}
	return t
}

// protocolRules derives the τ-thresholded consistency rules from the
// schema and binning (§3.3): FTP/SSH control ports imply TCP, DNS on
// port 53 is not ICMP, and byt ≥ pkt.
func protocolRules(t *dataset.Table, enc *binning.Encoder, tau float64) []marginal.Rule {
	s := t.Schema()
	var rules []marginal.Rule
	attrIdx := func(name string) int { return s.Index(name) }

	protoIdx := attrIdx(trace.FieldProto)
	dportIdx := attrIdx(trace.FieldDstPort)
	if protoIdx >= 0 && dportIdx >= 0 {
		dict := t.Dict(protoIdx)
		tcp := -1
		if dict != nil {
			if c, ok := dict.Lookup("TCP"); ok {
				tcp = c
			}
		}
		if tcp >= 0 {
			dpBins := enc.Attrs[dportIdx].Bins
			tcpOnly := func(port int64) func(dp, pr int32) bool {
				return func(dp, pr int32) bool {
					b := dpBins[int(dp)]
					if b.Lo == port && b.Hi == port {
						return int(pr) == tcp
					}
					return true
				}
			}
			rules = append(rules,
				marginal.Rule{A: dportIdx, B: protoIdx, Allowed: tcpOnly(21), Tau: tau, Name: "ftp-requires-tcp"},
				marginal.Rule{A: dportIdx, B: protoIdx, Allowed: tcpOnly(22), Tau: tau, Name: "ssh-requires-tcp"},
			)
		}
	}

	bytIdx, pktIdx := attrIdx(trace.FieldByt), attrIdx(trace.FieldPkt)
	if bytIdx >= 0 && pktIdx >= 0 {
		bytBins := enc.Attrs[bytIdx].Bins
		pktBins := enc.Attrs[pktIdx].Bins
		rules = append(rules, marginal.Rule{
			A: bytIdx, B: pktIdx, Tau: 1.0, Name: "bytes-at-least-packets",
			Allowed: func(by, pk int32) bool {
				// A packet has at least one byte: impossible if even
				// the largest byte count in the bin is below the
				// smallest packet count.
				return bytBins[int(by)].Hi >= pktBins[int(pk)].Lo
			},
		})
	}
	return rules
}

// SortedAttrNames is a helper for diagnostics: the names of an
// attribute set in schema order.
func SortedAttrNames(e *dataset.Encoded, attrs []int) []string {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	names := make([]string, len(s))
	for i, a := range s {
		names[i] = e.Names[a]
	}
	return names
}
