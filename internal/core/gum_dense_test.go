package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// gumEquivSetup builds a mixed marginal set (1-, 2- and 3-way) whose
// targets come from a differently-seeded dataset than the one being
// synthesized, so every planning pass has real over/under gaps and
// the pool, shuffle, representative and duplicate phases all run.
func gumEquivSetup(rows int) (*dataset.Encoded, []*marginal.Marginal) {
	domains := []int{16, 8, 12, 6}
	names := []string{"a", "b", "c", "d"}
	mk := func(seed1, seed2 uint64) *dataset.Encoded {
		ds := dataset.NewEncoded(names, domains, rows)
		rng := rand.New(rand.NewPCG(seed1, seed2))
		for a, dom := range domains {
			col := ds.Cols[a]
			for r := range col {
				col[r] = int32(rng.IntN(dom))
			}
		}
		return ds
	}
	ds := mk(3, 5)
	tgt := mk(7, 9)
	ms := []*marginal.Marginal{
		marginal.Compute(tgt, []int{0}),
		marginal.Compute(tgt, []int{1, 2}),
		marginal.Compute(tgt, []int{0, 2, 3}),
	}
	return ds, ms
}

// cloneEncoded deep-copies an encoded dataset.
func cloneEncoded(ds *dataset.Encoded) *dataset.Encoded {
	out := dataset.NewEncoded(ds.Names, ds.Domains, ds.NumRows())
	for a := range ds.Cols {
		copy(out.Cols[a], ds.Cols[a])
	}
	return out
}

// sameEncoded asserts two synthesized datasets are byte-identical.
func sameEncoded(t *testing.T, tag string, got, want *dataset.Encoded) {
	t.Helper()
	for a := range want.Cols {
		for r := range want.Cols[a] {
			if got.Cols[a][r] != want.Cols[a][r] {
				t.Fatalf("%s: output differs at col %d row %d: got %d, want %d",
					tag, a, r, got.Cols[a][r], want.Cols[a][r])
			}
		}
	}
}

// TestGUMDenseSparseEquivalence is the tentpole's hard contract:
// every counting/classification configuration — the dense arena
// (float64 or Cells32), the sparse map fallback, the linear gap
// sweep, the sort-merge route, and the L2-blocked tally — must
// synthesize byte-identical output at a fixed seed: same plans, same
// moves, same RNG consumption, same per-round errors.
func TestGUMDenseSparseEquivalence(t *testing.T) {
	const rows = 2000
	ds, ms := gumEquivSetup(rows)
	cfg := GUMConfig{Iterations: 25, InitAlpha: 1, AlphaDecay: 0.84, DuplicateProb: 0.5, Seed: 42, Workers: 1}

	run := func(mode int, cells32 bool) (*dataset.Encoded, []float64) {
		c := cfg
		c.denseMode = mode
		c.Cells32 = cells32
		d := cloneEncoded(ds)
		errs := NewGUM(ms, rows, c).Run(d)
		return d, errs
	}
	dDense, errsDense := run(gumDenseForced, false)
	dSparse, errsSparse := run(gumSparseForced, false)

	if len(errsDense) != len(errsSparse) {
		t.Fatalf("round counts differ: %d vs %d", len(errsDense), len(errsSparse))
	}
	for i := range errsDense {
		if errsDense[i] != errsSparse[i] {
			t.Fatalf("round %d error differs: dense %v vs sparse %v", i, errsDense[i], errsSparse[i])
		}
	}
	sameEncoded(t, "sparse vs dense", dSparse, dDense)

	// Auto mode must agree too (these marginals are all dense-eligible).
	dAuto, _ := run(gumDenseAuto, false)
	sameEncoded(t, "auto vs dense", dAuto, dDense)

	// The float32 arena: counts and quotas are integral and far below
	// 2²⁴, so Cells32 must not change a single byte.
	d32, errs32 := run(gumDenseForced, true)
	for i := range errsDense {
		if errs32[i] != errsDense[i] {
			t.Fatalf("round %d error differs under Cells32: %v vs %v", i, errs32[i], errsDense[i])
		}
	}
	sameEncoded(t, "cells32 vs dense", d32, dDense)

	// Force the sort-merge route (sweep disabled) and the linear sweep
	// (always on): byte-identical by the ascending-cell contract.
	defer func(f int) { gumSweepFactor = f }(gumSweepFactor)
	gumSweepFactor = 0
	dSort, _ := run(gumDenseForced, false)
	sameEncoded(t, "sort-merge vs dense", dSort, dDense)
	gumSweepFactor = 1 << 30
	dSweep, _ := run(gumDenseForced, false)
	sameEncoded(t, "forced-sweep vs dense", dSweep, dDense)
	gumSweepFactor = 8

	// Force the L2-blocked tally by shrinking the tile budget to a few
	// cache lines: the touched SET is block-ordered instead of
	// first-touch-ordered, which must be invisible downstream.
	defer func(b int) { gumTileBytes = b }(gumTileBytes)
	gumTileBytes = 256
	dTiled, _ := run(gumDenseForced, false)
	sameEncoded(t, "tiled vs dense", dTiled, dDense)
	dTiled32, _ := run(gumDenseForced, true)
	sameEncoded(t, "tiled cells32 vs dense", dTiled32, dDense)
}

// samePlan compares two plans field by field.
func samePlan(t *testing.T, tag string, got, want *gumPlan) {
	t.Helper()
	if got.l1 != want.l1 {
		t.Fatalf("%s: l1 = %v, want %v", tag, got.l1, want.l1)
	}
	if got.dups != want.dups {
		t.Fatalf("%s: dups = %d, want %d", tag, got.dups, want.dups)
	}
	if len(got.moves) != len(want.moves) {
		t.Fatalf("%s: %d moves, want %d", tag, len(got.moves), len(want.moves))
	}
	for i := range got.moves {
		if got.moves[i] != want.moves[i] {
			t.Fatalf("%s: move %d = %+v, want %+v", tag, i, got.moves[i], want.moves[i])
		}
	}
	if len(got.rowBuf) != len(want.rowBuf) {
		t.Fatalf("%s: rowBuf len %d, want %d", tag, len(got.rowBuf), len(want.rowBuf))
	}
	for i := range got.rowBuf {
		if got.rowBuf[i] != want.rowBuf[i] {
			t.Fatalf("%s: rowBuf[%d] = %d, want %d", tag, i, got.rowBuf[i], want.rowBuf[i])
		}
	}
}

// TestGumScratchEpochReuse drives one scratch arena through many
// plans with shifting touched sets — cycling marginals and mutating
// the dataset between rounds, the way GUM itself reuses a worker's
// scratch — and checks every plan against a freshly allocated
// scratch. A stale count, quota, or representative surviving an epoch
// bump would surface as a plan mismatch.
func TestGumScratchEpochReuse(t *testing.T) {
	const rows = 600
	ds, ms := gumEquivSetup(rows)
	g := NewGUM(ms, rows, GUMConfig{denseMode: gumDenseForced})
	reused := newGumScratch(rows, g.denseCells, false)
	codes := make([]int32, 4)

	var gotPlan, wantPlan gumPlan
	for round := 0; round < 30; round++ {
		ti := round % len(g.targets)
		tgt := g.targets[ti]
		seed := taskSeed(99, "gum-update", round)

		reused.reseed(seed)
		planUpdate(ds, tgt, 0.7, 0.5, reused, &gotPlan)

		fresh := newGumScratch(rows, g.denseCells, false)
		fresh.reseed(seed)
		planUpdate(ds, tgt, 0.7, 0.5, fresh, &wantPlan)

		samePlan(t, "reuse", &gotPlan, &wantPlan)
		// Mutate the dataset so the next round's touched set differs.
		applyPlan(ds, tgt.m, &gotPlan, codes)
	}
}

// TestGumScratchEpochWrap forces the epoch counter to the uint32
// wraparound boundary and checks plans stay correct across the wrap:
// the one-time stamp zeroing must leave no cell reading as live.
func TestGumScratchEpochWrap(t *testing.T) {
	const rows = 600
	ds, ms := gumEquivSetup(rows)
	g := NewGUM(ms, rows, GUMConfig{denseMode: gumDenseForced})
	sc := newGumScratch(rows, g.denseCells, false)
	// Simulate ~4 billion prior plans: cells last touched by the very
	// first epochs (1..3) still hold those stamps, and the wrap is
	// about to reissue exactly those epoch values. Without the
	// one-time clear, the stale stamps would read as live and the
	// poisoned vals/rep below would leak into plans.
	sc.epoch = math.MaxUint32 - 4
	for i := range sc.stamp {
		sc.stamp[i] = uint32(1 + i%3)
		sc.vals[i] = 5
		sc.rep[i] = 7
	}

	var gotPlan, wantPlan gumPlan
	for round := 0; round < 6; round++ {
		ti := round % len(g.targets)
		tgt := g.targets[ti]
		seed := taskSeed(7, "gum-update", round)

		sc.reseed(seed)
		planUpdate(ds, tgt, 0.7, 0.5, sc, &gotPlan)

		fresh := newGumScratch(rows, g.denseCells, false)
		fresh.reseed(seed)
		planUpdate(ds, tgt, 0.7, 0.5, fresh, &wantPlan)

		samePlan(t, "wrap", &gotPlan, &wantPlan)
	}
	if sc.epoch > 18 {
		t.Fatalf("epoch did not wrap: %d", sc.epoch)
	}
}
