package core

import (
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// tinyFlowTable builds a minimal flow table with n copies of a single
// record shape (optionally with one varying column).
func tinyFlowTable(t *testing.T, n int, vary bool) *dataset.Table {
	t.Helper()
	schema := trace.FlowSchema("label")
	tab := dataset.NewTable(schema, n)
	tcp := tab.CatCode(schema.Index(trace.FieldProto), "TCP")
	ben := tab.CatCode(schema.LabelIndex(), "benign")
	for i := 0; i < n; i++ {
		dport := int64(80)
		if vary && i%2 == 0 {
			dport = 443
		}
		row := []int64{
			0xC0A80001, 0x0A000001, 40000 + int64(i%3), dport, tcp,
			int64(i * 10), 100, 5, 500, ben,
		}
		if err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestPipelineTinyInputs(t *testing.T) {
	for _, n := range []int{2, 5, 20} {
		tab := tinyFlowTable(t, n, true)
		cfg := fastPipelineConfig()
		cfg.GUM.Iterations = 3
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Synthesize(tab)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Table.NumRows() == 0 {
			t.Errorf("n=%d: empty output", n)
		}
	}
}

func TestPipelineConstantColumns(t *testing.T) {
	// Every record identical: single-bin attributes everywhere.
	tab := tinyFlowTable(t, 50, false)
	cfg := fastPipelineConfig()
	cfg.GUM.Iterations = 3
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(tab)
	if err != nil {
		t.Fatal(err)
	}
	// The label column must still decode to the one real value.
	li := res.Table.Schema().LabelIndex()
	for r := 0; r < res.Table.NumRows(); r++ {
		if got := res.Table.CatValue(li, res.Table.Value(r, li)); got != "benign" {
			t.Fatalf("row %d label = %q", r, got)
		}
	}
}

func TestPipelineSingleClass(t *testing.T) {
	// GUMMI keyed on a label with domain 1 must not break.
	tab := tinyFlowTable(t, 100, true)
	cfg := fastPipelineConfig()
	cfg.GUM.Iterations = 3
	cfg.UseGUMMI = true
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Synthesize(tab); err != nil {
		t.Fatal(err)
	}
}

func TestGUMNoMarginals(t *testing.T) {
	g := NewGUM(nil, 10, DefaultGUMConfig())
	ds := dataset.NewEncoded([]string{"a"}, []int{2}, 10)
	if errs := g.Run(ds); errs != nil {
		t.Errorf("no-marginal GUM should be a no-op, got %v", errs)
	}
}

func TestGUMEmptyDataset(t *testing.T) {
	g := NewGUM(nil, 0, DefaultGUMConfig())
	ds := dataset.NewEncoded([]string{"a"}, []int{2}, 0)
	if errs := g.Run(ds); errs != nil {
		t.Errorf("empty-dataset GUM should be a no-op, got %v", errs)
	}
}
