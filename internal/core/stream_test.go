package core

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// sliceBatches feeds pre-cut batches as a BatchSource, emulating a
// CSV stream over an in-memory table.
type sliceBatches struct {
	batches []*dataset.Table
	next    int
}

func (s *sliceBatches) Next() (*dataset.Table, error) {
	if s.next >= len(s.batches) {
		return nil, io.EOF
	}
	b := s.batches[s.next]
	s.next++
	return b, nil
}

// batchesOf cuts a table into row batches of at most n rows, each a
// self-contained table (as a CSV decoder would produce).
func batchesOf(t *testing.T, tab *dataset.Table, n int) *sliceBatches {
	t.Helper()
	var out []*dataset.Table
	for lo := 0; lo < tab.NumRows(); lo += n {
		hi := lo + n
		if hi > tab.NumRows() {
			hi = tab.NumRows()
		}
		b := dataset.NewTable(tab.Schema(), hi-lo)
		if err := b.AppendRowRange(tab, lo, hi); err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return &sliceBatches{batches: out}
}

// TestStreamEquivalenceWithWindowed is the streaming contract: fixed
// seed + fixed window count ⇒ streaming the trace window-by-window is
// byte-identical to batch windowed synthesis on the pre-loaded table.
func TestStreamEquivalenceWithWindowed(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1700, Seed: 131})
	if err != nil {
		t.Fatal(err)
	}
	// The streaming side requires a time-ordered trace; sorting first
	// also makes the batch side's stable sort the identity, so both
	// paths see identical partitions.
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	cfg := fastPipelineConfig()
	const windows = 4

	batch, err := SynthesizeWindowed(sorted, cfg, windows)
	if err != nil {
		t.Fatal(err)
	}

	src, err := dataset.NewStreamWindows(batchesOf(t, sorted, 450), sorted.Schema(),
		dataset.WindowSplit{Field: trace.FieldTS, Windows: windows, TotalRows: sorted.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	var streamed *dataset.Table
	var reports []Report
	err = SynthesizeStream(src, cfg, func(wr WindowResult) error {
		reports = append(reports, wr.Report)
		if streamed == nil {
			streamed = wr.Table
			return nil
		}
		return streamed.AppendRowRange(wr.Table, 0, wr.Table.NumRows())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(batch.WindowReports) {
		t.Fatalf("windows: %d streamed vs %d batch", len(reports), len(batch.WindowReports))
	}
	tablesIdentical(t, batch.Table, streamed)
	for i := range reports {
		if reports[i].SynthRecords != batch.WindowReports[i].SynthRecords {
			t.Errorf("window %d records: %d vs %d", i, reports[i].SynthRecords, batch.WindowReports[i].SynthRecords)
		}
	}
}

// TestTimeWindowEquivalence: fixed time-span windows over a
// pre-loaded table and over a batch stream of the same rows produce
// identical partitions with identical bucket IDs, hence byte-identical
// synthesis.
func TestTimeWindowEquivalence(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1100, Seed: 163})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	ts := sorted.Column(sorted.Schema().Index(trace.FieldTS))
	span := (ts[len(ts)-1]-ts[0])/5 + 1 // a handful of buckets
	cfg := fastPipelineConfig()

	run := func(src WindowSource) (tables []*dataset.Table, ids []int) {
		t.Helper()
		err := SynthesizeStream(src, cfg, func(wr WindowResult) error {
			tables = append(tables, wr.Table)
			ids = append(ids, wr.Window)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tables, ids
	}

	tsrc, err := NewTableTimeWindows(sorted, span)
	if err != nil {
		t.Fatal(err)
	}
	batchTabs, batchIDs := run(tsrc)

	ssrc, err := dataset.NewStreamWindows(batchesOf(t, sorted, 217), sorted.Schema(),
		dataset.WindowSplit{Field: trace.FieldTS, Span: span})
	if err != nil {
		t.Fatal(err)
	}
	streamTabs, streamIDs := run(ssrc)

	if len(batchTabs) < 2 {
		t.Fatalf("want ≥ 2 non-empty time windows, got %d", len(batchTabs))
	}
	if len(batchTabs) != len(streamTabs) {
		t.Fatalf("windows: %d batch vs %d stream", len(batchTabs), len(streamTabs))
	}
	for i := range batchTabs {
		if batchIDs[i] != streamIDs[i] {
			t.Errorf("window %d emission index: %d vs %d", i, batchIDs[i], streamIDs[i])
		}
	}
	a, b := batchTabs[0], streamTabs[0]
	for i := 1; i < len(batchTabs); i++ {
		if err := a.AppendRowRange(batchTabs[i], 0, batchTabs[i].NumRows()); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendRowRange(streamTabs[i], 0, streamTabs[i].NumRows()); err != nil {
			t.Fatal(err)
		}
	}
	tablesIdentical(t, a, b)
}

// TestSynthesizeStreamLiveFeed drives the continuous-ingest seam: a
// WindowFeed receives windows over time while SynthesizeStream is
// already running, each window synthesizes as it lands (the emitter
// observes window i before window i+1 is even published), and the
// combined output is byte-identical to the batch time-span path —
// the live source shares bucket IDs (hence seeds) with
// NewTableTimeWindows.
func TestSynthesizeStreamLiveFeed(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 900, Seed: 167})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	ts := sorted.Column(sorted.Schema().Index(trace.FieldTS))
	span := (ts[len(ts)-1]-ts[0])/4 + 1
	cfg := fastPipelineConfig()

	// Batch reference over the same partitions.
	bsrc, err := NewTableTimeWindows(sorted, span)
	if err != nil {
		t.Fatal(err)
	}
	var batchTabs []*dataset.Table
	if err := SynthesizeStream(bsrc, cfg, func(wr WindowResult) error {
		batchTabs = append(batchTabs, wr.Table)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(batchTabs) < 2 {
		t.Fatalf("want ≥ 2 buckets, got %d", len(batchTabs))
	}

	// Cut the sorted trace into its buckets up front so the test can
	// publish them one at a time.
	type cut struct {
		bucket int64
		tab    *dataset.Table
	}
	var cuts []cut
	for lo := 0; lo < sorted.NumRows(); {
		b := dataset.TimeBucket(ts[lo], span)
		hi := lo
		for hi < sorted.NumRows() && dataset.TimeBucket(ts[hi], span) == b {
			hi++
		}
		part := dataset.NewTable(sorted.Schema(), hi-lo)
		if err := part.AppendRowRange(sorted, lo, hi); err != nil {
			t.Fatal(err)
		}
		cuts = append(cuts, cut{bucket: b, tab: part})
		lo = hi
	}

	feed, err := dataset.NewWindowFeed(sorted.Schema(), trace.FieldTS, span)
	if err != nil {
		t.Fatal(err)
	}
	// Publish window i+1 only after window i's synthesis was emitted:
	// this proves the engine synthesizes each arrival without waiting
	// for the stream to end.
	emitted := make(chan int)
	go func() {
		for i, c := range cuts {
			if err := feed.Publish(c.bucket, c.tab); err != nil {
				t.Errorf("publish %d: %v", c.bucket, err)
				feed.Close()
				return
			}
			if <-emitted != i {
				t.Error("emission out of step with publication")
			}
		}
		feed.Close()
	}()
	var liveTabs []*dataset.Table
	err = SynthesizeStream(feed.Live(), cfg, func(wr WindowResult) error {
		liveTabs = append(liveTabs, wr.Table)
		emitted <- wr.Window
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(liveTabs) != len(batchTabs) {
		t.Fatalf("windows: %d live vs %d batch", len(liveTabs), len(batchTabs))
	}
	for i := range liveTabs {
		tablesIdentical(t, batchTabs[i], liveTabs[i])
	}
}

// TestSynthesizeStreamLiveAbort: an emit failure while the live
// source is parked in Next must stop the source and return — a
// regression here deadlocks the stream (and leaks its producer), so
// this is a liveness check.
func TestSynthesizeStreamLiveAbort(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 300, Seed: 173})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	ts := sorted.Column(sorted.Schema().Index(trace.FieldTS))
	span := ts[len(ts)-1] - ts[0] + 1
	feed, err := dataset.NewWindowFeed(sorted.Schema(), trace.FieldTS, span)
	if err != nil {
		t.Fatal(err)
	}
	// Publish the first bucket's rows (the absolute bucket grid need
	// not align with the trace start, so cut at the bucket boundary).
	bucket := dataset.TimeBucket(ts[0], span)
	hi := 0
	for hi < len(ts) && dataset.TimeBucket(ts[hi], span) == bucket {
		hi++
	}
	first := dataset.NewTable(sorted.Schema(), hi)
	if err := first.AppendRowRange(sorted, 0, hi); err != nil {
		t.Fatal(err)
	}
	if err := feed.Publish(bucket, first); err != nil {
		t.Fatal(err)
	}
	// The feed stays open: after the one window is emitted the
	// producer blocks in Next, and the emit error must unblock it.
	done := make(chan error, 1)
	go func() {
		done <- SynthesizeStream(feed.Live(), fastPipelineConfig(), func(WindowResult) error {
			return fmt.Errorf("downstream gone")
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "downstream gone") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("aborted live stream never returned")
	}
}

// TestSynthesizeStreamEmitsInOrder checks ordered delivery even with
// several windows in flight.
func TestSynthesizeStreamEmitsInOrder(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1200, Seed: 137})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	src, err := dataset.NewStreamWindows(batchesOf(t, sorted, 256), sorted.Schema(),
		dataset.WindowSplit{Field: trace.FieldTS, MaxRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.Workers = 4
	want := 0
	err = SynthesizeStream(src, cfg, func(wr WindowResult) error {
		if wr.Window != want {
			return fmt.Errorf("window %d emitted, want %d", wr.Window, want)
		}
		want++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want != 6 { // 1200 rows / 200 per window
		t.Fatalf("emitted %d windows", want)
	}
}

// TestSynthesizeStreamEmptyWindows covers rows < windows: the empty
// windows consume indices but must neither stall the in-order emitter
// nor occupy concurrency slots. (A regression here deadlocks, so the
// test doubles as a liveness check.)
func TestSynthesizeStreamEmptyWindows(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 5, Seed: 157})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	const windows = 16 // 5 rows into 16 windows: 11 empty
	cfg := fastPipelineConfig()
	cfg.Workers = 2

	batch, err := SynthesizeWindowed(sorted, cfg, windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.WindowReports) != 5 {
		t.Fatalf("batch emitted %d windows, want 5 non-empty", len(batch.WindowReports))
	}

	src, err := dataset.NewStreamWindows(batchesOf(t, sorted, 2), sorted.Schema(),
		dataset.WindowSplit{Field: trace.FieldTS, Windows: windows, TotalRows: sorted.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	var streamed *dataset.Table
	emitted := 0
	err = SynthesizeStream(src, cfg, func(wr WindowResult) error {
		emitted++
		if streamed == nil {
			streamed = wr.Table
			return nil
		}
		return streamed.AppendRowRange(wr.Table, 0, wr.Table.NumRows())
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 5 {
		t.Fatalf("streamed emitted %d windows, want 5", emitted)
	}
	tablesIdentical(t, batch.Table, streamed)
}

type failingSource struct {
	yielded bool
	tab     *dataset.Table
}

func (f *failingSource) Next() (dataset.Window, error) {
	if f.yielded {
		return dataset.Window{}, fmt.Errorf("stream torn mid-trace")
	}
	f.yielded = true
	return dataset.Window{Table: f.tab}, nil
}

// emptyWindows is a WindowSource that is immediately exhausted.
type emptyWindows struct{}

func (emptyWindows) Next() (dataset.Window, error) { return dataset.Window{}, io.EOF }

func TestSynthesizeStreamSourceError(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 400, Seed: 139})
	if err != nil {
		t.Fatal(err)
	}
	err = SynthesizeStream(&failingSource{tab: raw}, fastPipelineConfig(), func(WindowResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "torn mid-trace") {
		t.Fatalf("err = %v", err)
	}
}

func TestSynthesizeStreamEmitError(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 900, Seed: 149})
	if err != nil {
		t.Fatal(err)
	}
	sorted := raw.SortBy(raw.Schema().Index(trace.FieldTS))
	src, err := dataset.NewStreamWindows(batchesOf(t, sorted, 300), sorted.Schema(),
		dataset.WindowSplit{Field: trace.FieldTS, MaxRows: 300})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = SynthesizeStream(src, fastPipelineConfig(), func(wr WindowResult) error {
		calls++
		return fmt.Errorf("sink full")
	})
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing", calls)
	}
}

// TestSynthesizeStreamWindowError propagates a failing window with
// its index.
func TestSynthesizeStreamWindowError(t *testing.T) {
	// A window whose rows are empty of signal still synthesizes; to
	// force a pipeline error, hand the stream a window with zero
	// usable schema — simplest is a one-row window with iterations
	// misconfigured at the pipeline level.
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 200, Seed: 151})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.GUM.Iterations = 0 // NewPipeline inside the stream must reject this
	err = SynthesizeStream(emptyWindows{}, cfg, func(WindowResult) error { return nil })
	if err != nil {
		t.Fatalf("empty source must be a clean EOF, got %v", err)
	}
	src, err := dataset.NewStreamWindows(batchesOf(t, raw.SortBy(raw.Schema().Index(trace.FieldTS)), 100),
		raw.Schema(), dataset.WindowSplit{Field: trace.FieldTS, MaxRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	err = SynthesizeStream(src, cfg, func(WindowResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Fatalf("err = %v", err)
	}
}
