// Package core implements the NetDPSyn pipeline — the paper's primary
// contribution: DenseMarg marginal selection (§3.3), marginal
// combination, noisy publication and post-processing, and GUM/GUMMI
// record synthesis (§3.4), orchestrated end-to-end by Pipeline.
package core

import (
	"math"
	"sort"

	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// SelectionResult is the outcome of DenseMarg selection.
type SelectionResult struct {
	// Selected lists the chosen attribute sets (initially pairs, then
	// possibly merged into multi-way sets by Combine).
	Selected [][]int
	// TotalError is the objective value at termination: the sum of
	// noise error over selected marginals and dependency error over
	// the rest.
	TotalError float64
	// NoiseError and DependencyError break TotalError down.
	NoiseError      float64
	DependencyError float64
}

// cellsOf returns the cell count of a marginal over the given
// attribute set.
func cellsOf(domains []int, attrs []int) float64 {
	c := 1.0
	for _, a := range attrs {
		c *= float64(domains[a])
	}
	return c
}

// noiseErrors computes, for a candidate selected set, the expected L1
// noise error of each selected marginal under PrivSyn's optimal
// unequal budget allocation ρ_i ∝ c_i^{2/3} over the publication
// budget rhoPublish. pow23 carries each marginal's precomputed
// c^{2/3}: the greedy loop in selectMarginals evaluates O(n·k)
// candidate sets of up to k marginals each, and recomputing the
// fractional powers inside made math.Pow the single hottest call of a
// follow-mode synthesis step.
func noiseErrors(cells, pow23 []float64, rhoPublish float64) []float64 {
	var denom float64
	for _, p := range pow23 {
		denom += p
	}
	out := make([]float64, len(cells))
	if denom <= 0 || rhoPublish <= 0 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i, c := range cells {
		rho := rhoPublish * pow23[i] / denom
		sigma := 1 / math.Sqrt(2*rho)
		out[i] = marginal.ExpectedL1NoiseError(int(c), sigma)
	}
	return out
}

// SelectMarginals runs DenseMarg's greedy optimization (Eq. 2 of the
// paper): minimize Σ_i [ψ_i·x_i + φ_i·(1−x_i)] where φ is the (noisy)
// InDif dependency error of omitting pair i and ψ the noise error of
// publishing it under the shared publication budget. Each step adds
// the pair whose inclusion most reduces the total error (the highest
// net benefit φ − Δψ, which is not the highest φ: a strongly
// dependent pair over huge domains can cost more noise than its
// dependency is worth); selection stops when no remaining pair
// improves the objective.
func SelectMarginals(ps *marginal.PairScores, domains []int, rhoPublish float64) *SelectionResult {
	return SelectMarginalsCapped(ps, domains, rhoPublish, 0)
}

// SelectMarginalsCapped is SelectMarginals with capacity caps:
// candidate pairs whose 2-way marginal exceeds maxCells cells
// (0 = unlimited) are never selected, and at most maxSelected pairs
// are chosen (0 = unlimited). A marginal with far more cells than
// records is nearly uninformative for record synthesis yet scores a
// large, granularity-inflated InDif, and GUM cannot reconcile an
// unbounded number of overlapping constraints at a fixed record
// count; both caps keep selection within what synthesis can use. The
// pipeline passes a small multiple of the record count and of the
// attribute count respectively.
func SelectMarginalsCapped(ps *marginal.PairScores, domains []int, rhoPublish, maxCells float64) *SelectionResult {
	return selectMarginals(ps, domains, rhoPublish, maxCells, 0)
}

// SelectMarginalsBounded adds the selection-count cap.
func SelectMarginalsBounded(ps *marginal.PairScores, domains []int, rhoPublish, maxCells float64, maxSelected int) *SelectionResult {
	return selectMarginals(ps, domains, rhoPublish, maxCells, maxSelected)
}

func selectMarginals(ps *marginal.PairScores, domains []int, rhoPublish, maxCells float64, maxSelected int) *SelectionResult {
	n := len(ps.Pairs)
	var totalDep float64
	for _, s := range ps.Scores {
		totalDep += s
	}
	allCells := make([]float64, n)
	allPow23 := make([]float64, n)
	eligible := make([]bool, n)
	for i, p := range ps.Pairs {
		allCells[i] = cellsOf(domains, p[:])
		allPow23[i] = math.Pow(allCells[i], 2.0/3.0)
		eligible[i] = maxCells <= 0 || allCells[i] <= maxCells
	}

	cellsBuf := make([]float64, n)
	powBuf := make([]float64, n)
	totalErr := func(sel []int) (total, noise, dep float64) {
		cells := cellsBuf[:len(sel)]
		pow23 := powBuf[:len(sel)]
		dep = totalDep
		for i, idx := range sel {
			cells[i] = allCells[idx]
			pow23[i] = allPow23[idx]
			dep -= ps.Scores[idx]
		}
		for _, ne := range noiseErrors(cells, pow23, rhoPublish) {
			noise += ne
		}
		return noise + dep, noise, dep
	}

	selected := make([]int, 0, n)
	inSel := make([]bool, n)
	bestTotal, bestNoise, bestDep := totalErr(nil)
	for maxSelected <= 0 || len(selected) < maxSelected {
		bestIdx := -1
		var bestT, bestN, bestD float64
		for i := 0; i < n; i++ {
			if inSel[i] || !eligible[i] {
				continue
			}
			t, ne, de := totalErr(append(selected, i))
			if bestIdx < 0 || t < bestT {
				bestIdx, bestT, bestN, bestD = i, t, ne, de
			}
		}
		if bestIdx < 0 || bestT >= bestTotal {
			break
		}
		selected = append(selected, bestIdx)
		inSel[bestIdx] = true
		bestTotal, bestNoise, bestDep = bestT, bestN, bestD
	}
	sort.Ints(selected)

	res := &SelectionResult{
		TotalError:      bestTotal,
		NoiseError:      bestNoise,
		DependencyError: bestDep,
	}
	for _, idx := range selected {
		p := ps.Pairs[idx]
		res.Selected = append(res.Selected, []int{p[0], p[1]})
	}
	return res
}

// Combine merges overlapping selected marginals whose combined size
// is small (§3.3: "DenseMarg further merges the overlapping ones
// whose sizes are small"), producing multi-way marginals that capture
// higher-order correlations at no extra budget fragmentation. Sets
// are merged greedily, smallest combined cell count first, while the
// merged size stays within maxCells and the arity within maxAttrs.
func Combine(selected [][]int, domains []int, maxCells float64, maxAttrs int) [][]int {
	sets := make([][]int, len(selected))
	for i, s := range selected {
		sets[i] = append([]int(nil), s...)
		sort.Ints(sets[i])
	}
	for {
		bestI, bestJ := -1, -1
		bestCells := math.Inf(1)
		for i := 0; i < len(sets); i++ {
			for j := i + 1; j < len(sets); j++ {
				if !overlap(sets[i], sets[j]) {
					continue
				}
				u := union(sets[i], sets[j])
				if len(u) > maxAttrs {
					continue
				}
				c := cellsOf(domains, u)
				if c <= maxCells && c < bestCells {
					bestI, bestJ, bestCells = i, j, c
				}
			}
		}
		if bestI < 0 {
			return dedupe(sets)
		}
		u := union(sets[bestI], sets[bestJ])
		sets[bestI] = u
		sets = append(sets[:bestJ], sets[bestJ+1:]...)
	}
}

func overlap(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func union(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// dedupe removes attribute sets fully contained in another set (a
// merged set supersedes its parts).
func dedupe(sets [][]int) [][]int {
	var out [][]int
	for i, s := range sets {
		sub := false
		for j, t := range sets {
			if i == j {
				continue
			}
			if len(s) < len(t) && subset(s, t) {
				sub = true
				break
			}
			if len(s) == len(t) && i > j && subset(s, t) {
				sub = true // exact duplicate, keep first
				break
			}
		}
		if !sub {
			out = append(out, s)
		}
	}
	return out
}

func subset(s, t []int) bool {
	j := 0
	for _, v := range s {
		for j < len(t) && t[j] < v {
			j++
		}
		if j >= len(t) || t[j] != v {
			return false
		}
	}
	return true
}
