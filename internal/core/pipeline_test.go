package core

import (
	"math"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

func fastPipelineConfig() Config {
	cfg := DefaultConfig()
	cfg.GUM.Iterations = 6
	cfg.Seed = 91
	return cfg
}

func TestPipelineReportBudgets(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1200, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(fastPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	// The budget split must be exactly 0.1/0.1/0.8 of ρ.
	if math.Abs(rep.RhoBin-0.1*rep.Rho) > 1e-12 ||
		math.Abs(rep.RhoSelect-0.1*rep.Rho) > 1e-12 ||
		math.Abs(rep.RhoPublish-0.8*rep.Rho) > 1e-12 {
		t.Errorf("budget split wrong: %v %v %v of %v", rep.RhoBin, rep.RhoSelect, rep.RhoPublish, rep.Rho)
	}
	if len(rep.SelectedSets) == 0 {
		t.Error("no marginals selected")
	}
	if rep.SynthRecords != res.Table.NumRows() {
		t.Errorf("records: report %d, table %d", rep.SynthRecords, res.Table.NumRows())
	}
	if len(rep.GUMErrors) != 6 {
		t.Errorf("GUM error trace length = %d", len(rep.GUMErrors))
	}
	for _, phase := range []string{"preprocess", "select", "publish", "postprocess", "gum", "decode"} {
		if rep.Durations[phase] <= 0 {
			t.Errorf("phase %q has no duration", phase)
		}
	}
	// The synthetic record count should be within noise of the input.
	if res.Table.NumRows() < raw.NumRows()/2 || res.Table.NumRows() > raw.NumRows()*2 {
		t.Errorf("synthesized %d records from %d", res.Table.NumRows(), raw.NumRows())
	}
}

func TestPipelineAblationFlags(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 900, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.DisableTSDiff = true },
		func(c *Config) { c.DisableConsistency = true },
		func(c *Config) { c.DisableProtocolRules = true },
		func(c *Config) { c.UseGUMMI = false },
	} {
		cfg := fastPipelineConfig()
		mutate(&cfg)
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Synthesize(raw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.NumRows() == 0 {
			t.Error("ablated pipeline produced nothing")
		}
		// tsdiff must never leak into the output schema.
		if res.Table.Schema().Has(trace.FieldTSDiff) {
			t.Error("auxiliary tsdiff attribute in output")
		}
	}
}

func TestPipelinePacketTrace(t *testing.T) {
	raw, err := datagen.Generate(datagen.CAIDA, datagen.Config{Rows: 1500, Seed: 95})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(fastPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Schema().NumFields() != 15 {
		t.Fatalf("packet schema width = %d", res.Table.Schema().NumFields())
	}
	// Synthesized packets must convert back to trace records.
	if _, err := trace.TableToPackets(res.Table); err != nil {
		t.Fatalf("packets round trip: %v", err)
	}
}

func TestPipelineCustomKeyAttr(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 900, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.KeyAttr = "dstport"
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Synthesize(raw); err != nil {
		t.Fatalf("custom key attr: %v", err)
	}
}

func TestPipelineSmallEpsilonStillRuns(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 800, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.Epsilon = 0.1
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Error("ε=0.1 synthesis empty")
	}
}

func TestConsensusTotal(t *testing.T) {
	m1 := marginal.New([]int{0}, []int{2})
	copy(m1.Counts, []float64{60, 40}) // total 100
	m1.Sigma = 1
	m2 := marginal.New([]int{1}, []int{2})
	copy(m2.Counts, []float64{160, 40}) // total 200, noisier
	m2.Sigma = 10
	got := consensusTotal([]*marginal.Marginal{m1, m2})
	// Weighted toward the precise marginal's total (100).
	if got < 100 || got > 150 {
		t.Errorf("consensus total = %v, want near 100", got)
	}
	// Negative consensus clamps to zero.
	m3 := marginal.New([]int{0}, []int{1})
	m3.Counts[0] = -50
	m3.Sigma = 1
	if ct := consensusTotal([]*marginal.Marginal{m3}); ct != 0 {
		t.Errorf("negative total should clamp: %v", ct)
	}
}

func TestFiveTupleFields(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 200, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	got := fiveTuple(raw.Schema())
	want := []string{"srcip", "dstip", "srcport", "dstport", "proto"}
	if len(got) != len(want) {
		t.Fatalf("fiveTuple = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fiveTuple = %v", got)
		}
	}
}

func TestGUMErrorsDecreaseOnRealData(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1500, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.GUM.Iterations = 12
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	errs := res.Report.GUMErrors
	if len(errs) < 2 {
		t.Fatal("no error trace")
	}
	if errs[len(errs)-1] >= errs[0] {
		t.Errorf("GUM error did not decrease on real data: %v → %v", errs[0], errs[len(errs)-1])
	}
}
