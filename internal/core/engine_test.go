package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		eng := newEngine(workers)
		const n = 100
		var hits [n]atomic.Int32
		eng.parallelFor(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForErrReportsLowestIndex(t *testing.T) {
	eng := newEngine(4)
	errA := errors.New("a")
	errB := errors.New("b")
	err := eng.parallelForErr(10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("want lowest-index error %v, got %v", errA, err)
	}
}

func TestTaskSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for _, stage := range []string{"gum-update", "publish"} {
		for idx := 0; idx < 100; idx++ {
			s := taskSeed(42, stage, idx)
			if seen[s] {
				t.Fatalf("seed collision at stage=%s idx=%d", stage, idx)
			}
			seen[s] = true
		}
	}
	if taskSeed(42, "gum-update", 0) != taskSeed(42, "gum-update", 0) {
		t.Fatal("taskSeed not stable")
	}
	if taskSeed(42, "gum-update", 0) == taskSeed(43, "gum-update", 0) {
		t.Fatal("taskSeed ignores base seed")
	}
}

// tablesIdentical compares two tables cell by cell.
func tablesIdentical(t *testing.T, a, b *dataset.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < a.NumCols(); c++ {
		ca, cb := a.Column(c), b.Column(c)
		for r := range ca {
			if ca[r] != cb[r] {
				t.Fatalf("tables diverge at row %d col %d: %d vs %d", r, c, ca[r], cb[r])
			}
		}
	}
}

// TestPipelineWorkersDeterminism locks in the engine's central
// guarantee: Workers=1 and Workers=4 produce byte-identical
// synthesized tables for the same seed.
func TestPipelineWorkersDeterminism(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 1500, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var tables []*dataset.Table
	for _, workers := range []int{1, 4} {
		cfg := fastPipelineConfig()
		cfg.Workers = workers
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Synthesize(raw)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, res.Table)
	}
	tablesIdentical(t, tables[0], tables[1])
}

// TestWindowedWorkersDeterminism covers the concurrent-windows path:
// disjoint windows run in parallel yet concatenate identically.
func TestWindowedWorkersDeterminism(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 1200, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	var tables []*dataset.Table
	for _, workers := range []int{1, 4} {
		cfg := fastPipelineConfig()
		cfg.Workers = workers
		res, err := SynthesizeWindowed(raw, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, res.Table)
	}
	tablesIdentical(t, tables[0], tables[1])
}

// TestStageTimingsReported checks the wall/busy split lands in the
// report for every stage.
func TestStageTimingsReported(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 800, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastPipelineConfig()
	cfg.Workers = 2
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Synthesize(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synthStages {
		st, ok := res.Report.Stages[s.name]
		if !ok {
			t.Errorf("stage %q missing from Stages", s.name)
			continue
		}
		if st.Wall <= 0 || st.Busy <= 0 {
			t.Errorf("stage %q timing not positive: %+v", s.name, st)
		}
		if res.Report.Durations[s.name] != st.Wall {
			t.Errorf("stage %q: Durations %v != Stages.Wall %v", s.name, res.Report.Durations[s.name], st.Wall)
		}
	}
}
