package core

import (
	"math/rand/v2"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// BenchmarkGUMPlanUpdate measures one marginal's planning pass — the
// cell-index tally it opens with is the inner loop of the synthesis
// stage (≈90% of end-to-end runtime per §3.1), which is what the
// column-stride accumulation targets.
func BenchmarkGUMPlanUpdate(b *testing.B) {
	const rows = 50_000
	domains := []int{64, 32, 16}
	names := []string{"a", "b", "c"}
	ds := dataset.NewEncoded(names, domains, rows)
	rng := rand.New(rand.NewPCG(3, 5))
	for a, dom := range domains {
		col := ds.Cols[a]
		for r := range col {
			col[r] = int32(rng.IntN(dom))
		}
	}
	m := marginal.Compute(ds, []int{0, 1, 2})
	g := NewGUM([]*marginal.Marginal{m}, rows, DefaultGUMConfig())
	b.SetBytes(int64(len(domains)) * rows * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prng := rand.New(rand.NewPCG(uint64(i), 17))
		planUpdate(ds, g.targets[0], 0.5, 0.5, prng)
	}
}
