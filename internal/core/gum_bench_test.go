package core

import (
	"math/rand/v2"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// benchGUMSetup builds a 3-way marginal over a random dataset sized
// like one synthesis window, the shape both planning benchmarks
// share. The target counts come from a differently-seeded dataset so
// every plan has real over/under gaps — the pool scan, shuffle,
// representative pass and move loop all run, not just the tally.
func benchGUMSetup(rows int) (*dataset.Encoded, *GUM) {
	domains := []int{64, 32, 16}
	names := []string{"a", "b", "c"}
	mk := func(s1, s2 uint64) *dataset.Encoded {
		ds := dataset.NewEncoded(names, domains, rows)
		rng := rand.New(rand.NewPCG(s1, s2))
		for a, dom := range domains {
			col := ds.Cols[a]
			for r := range col {
				col[r] = int32(rng.IntN(dom))
			}
		}
		return ds
	}
	ds := mk(3, 5)
	m := marginal.Compute(mk(7, 9), []int{0, 1, 2})
	g := NewGUM([]*marginal.Marginal{m}, rows, DefaultGUMConfig())
	return ds, g
}

// BenchmarkGUMPlanUpdate measures one marginal's planning pass — the
// cell-index tally it opens with is the inner loop of the synthesis
// stage (≈90% of end-to-end runtime per §3.1), which is what the
// dense scratch arena targets.
func BenchmarkGUMPlanUpdate(b *testing.B) {
	const rows = 50_000
	ds, g := benchGUMSetup(rows)
	sc := newGumScratch(rows, g.denseCells, false)
	var plan gumPlan
	b.SetBytes(int64(ds.NumAttrs()) * rows * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.reseed(taskSeed(uint64(i), "gum-update", i))
		planUpdate(ds, g.targets[0], 0.5, 0.5, sc, &plan)
	}
}

// BenchmarkGUMSteadyState locks in the zero-alloc contract: once the
// scratch arena and plan buffers are warm, a planning pass must not
// allocate. It fails the benchmark if AllocsPerRun sees more than one
// residual allocation per plan (slack for one-off buffer growth when
// a round's pool outgrows every previous round's).
func BenchmarkGUMSteadyState(b *testing.B) {
	const rows = 50_000
	ds, g := benchGUMSetup(rows)
	sc := newGumScratch(rows, g.denseCells, false)
	var plan gumPlan
	i := 0
	run := func() {
		sc.reseed(taskSeed(uint64(i), "gum-update", i))
		planUpdate(ds, g.targets[0], 0.5, 0.5, sc, &plan)
		i++
	}
	// Warm every buffer to its steady-state capacity.
	for k := 0; k < 20; k++ {
		run()
	}
	allocs := testing.AllocsPerRun(100, run)
	b.ReportMetric(allocs, "allocs/plan")
	if allocs > 1 {
		b.Fatalf("steady-state planUpdate allocates %.1f allocs/plan, want ~0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		run()
	}
}
