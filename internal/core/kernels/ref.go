package kernels

import "math"

// This file holds the straight-line reference implementation of every
// kernel. It compiles in both variants: the purego build re-exports
// these directly, and the optimized build's tests (and
// FuzzKernelTally) compare against them in-process. Any change here
// changes the contract for both variants — keep the loops boring.

// refCells2 computes out[r] = a[r]*s0 + b[r] for every row.
func refCells2(out []int, a, b []int32, s0 int) {
	for r := range out {
		out[r] = int(a[r])*s0 + int(b[r])
	}
}

// refCells3 computes out[r] = a[r]*s0 + b[r]*s1 + c[r].
func refCells3(out []int, a, b, c []int32, s0, s1 int) {
	for r := range out {
		out[r] = int(a[r])*s0 + int(b[r])*s1 + int(c[r])
	}
}

// refAccumStride adds col[r]*s into out[r]; with init it overwrites
// instead (the first column of a generic stride accumulation).
func refAccumStride(out []int, col []int32, s int, init bool) {
	if init {
		for r := range out {
			out[r] = int(col[r]) * s
		}
		return
	}
	for r := range out {
		out[r] += int(col[r]) * s
	}
}

// refTally counts rows per cell into the epoch-stamped arena:
// a cell seen for the first time this epoch is stamped, set to 1 and
// appended to touched (in first-seen row order); later hits
// increment. Returns the grown touched slice.
func refTally[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	for _, c := range cells {
		if stamp[c] != epoch {
			stamp[c] = epoch
			vals[c] = 1
			touched = append(touched, c)
		} else {
			vals[c]++
		}
	}
	return touched
}

// refTallyRange is refTally restricted to cells in [lo, hi) — one
// pass of the L2-blocked tally. Out-of-block cells are skipped.
func refTallyRange[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, lo, hi int, touched []int) []int {
	for _, c := range cells {
		if c < lo || c >= hi {
			continue
		}
		if stamp[c] != epoch {
			stamp[c] = epoch
			vals[c] = 1
			touched = append(touched, c)
		} else {
			vals[c]++
		}
	}
	return touched
}

// refCells2Tally fuses refCells2 with refTally, recording each row's
// cell in cellOf on the way through.
func refCells2Tally[F Float](cellOf []int, a, b []int32, s0 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	for r := range cellOf {
		c := int(a[r])*s0 + int(b[r])
		cellOf[r] = c
		if stamp[c] != epoch {
			stamp[c] = epoch
			vals[c] = 1
			touched = append(touched, c)
		} else {
			vals[c]++
		}
	}
	return touched
}

// refCells3Tally is the three-attribute analogue of refCells2Tally.
func refCells3Tally[F Float](cellOf []int, a, b, c []int32, s0, s1 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	for r := range cellOf {
		cc := int(a[r])*s0 + int(b[r])*s1 + int(c[r])
		cellOf[r] = cc
		if stamp[cc] != epoch {
			stamp[cc] = epoch
			vals[cc] = 1
			touched = append(touched, cc)
		} else {
			vals[cc]++
		}
	}
	return touched
}

// refGapSweep walks every cell of the dense arena in ascending order,
// classifying each against its target count: cells counted this
// epoch (stamp == epoch) contribute their signed gap, target cells
// never counted contribute their full target as an under gap, and
// cells that are neither are skipped. tcells must be the ascending
// list of cells with target > dust. Gaps within ±dust of zero are
// excluded from over/under (they still count toward l1), matching
// GUM's dust rule. The l1 accumulation order is ascending-cell,
// identical to refGapMerge over the same union.
func refGapSweep[F Float](vals []F, stamp []uint32, epoch uint32, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	var l1 float64
	ki, kn := 0, len(tcells)
	for c := range counts {
		live := stamp[c] == epoch
		if ki < kn && tcells[ki] == c {
			ki++
			if !live {
				gap := counts[c]
				l1 += gap
				under = append(under, CellGap{c, gap})
				continue
			}
		} else if !live {
			continue
		}
		d := float64(vals[c]) - counts[c]
		l1 += math.Abs(d)
		if d > dust {
			over = append(over, CellGap{c, d})
		} else if d < -dust {
			under = append(under, CellGap{c, -d})
		}
	}
	return over, under, l1
}

// refGapMerge is the sort-based twin of refGapSweep for cell spaces
// too large to sweep linearly: touched must be the ascending sorted
// list of cells counted this epoch; it is merged against tcells.
// Byte-identical to refGapSweep on the same arena.
func refGapMerge[F Float](touched []int, vals []F, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	var l1 float64
	ki, kn := 0, len(tcells)
	for _, c := range touched {
		for ki < kn && tcells[ki] < c {
			tc := tcells[ki]
			gap := counts[tc]
			l1 += gap
			under = append(under, CellGap{tc, gap})
			ki++
		}
		if ki < kn && tcells[ki] == c {
			ki++
		}
		d := float64(vals[c]) - counts[c]
		l1 += math.Abs(d)
		if d > dust {
			over = append(over, CellGap{c, d})
		} else if d < -dust {
			under = append(under, CellGap{c, -d})
		}
	}
	for ; ki < kn; ki++ {
		tc := tcells[ki]
		gap := counts[tc]
		l1 += gap
		under = append(under, CellGap{tc, gap})
	}
	return over, under, l1
}

// refPoolScan collects donor rows in row order: a row whose cell
// still has quota (stamp == epoch, vals >= 1) joins the pool and
// decrements the quota. want is the summed quota — once that many
// rows are pooled every quota is zero and no later row can qualify,
// so stopping early is invisible in the output. Row order is part of
// the determinism contract — the pool feeds a seeded shuffle
// downstream.
func refPoolScan[F Float](cellOf []int, vals []F, stamp []uint32, epoch uint32, pool []int, want int) []int {
	for r := 0; r < len(cellOf) && want > 0; r++ {
		if c := cellOf[r]; stamp[c] == epoch && vals[c] >= 1 {
			vals[c]--
			pool = append(pool, r)
			want--
		}
	}
	return pool
}

// refRepScan finds the first representative row for each stamped
// cell (rep preset to -1), stopping early once need cells are
// resolved.
func refRepScan(cellOf []int, rep []int32, stamp []uint32, epoch uint32, need int) {
	for r := 0; r < len(cellOf) && need > 0; r++ {
		if c := cellOf[r]; stamp[c] == epoch && rep[c] < 0 {
			rep[c] = int32(r)
			need--
		}
	}
}
