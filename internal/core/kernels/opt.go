//go:build !purego

package kernels

import "math"

// The optimized variant: 8-lane unrolled loops with re-sliced
// operands so the compiler can prove bounds once per lane group, and
// a windowed all-miss fast path in GapSweep. Cell-indexed accesses
// (vals[c], stamp[c]) keep their bounds checks — cells are
// data-dependent — but the row-major streams dominate and those
// unroll cleanly. Every function here must stay byte-identical to
// its ref.go twin; the in-package tests and FuzzKernelTally compare
// them element for element.

// Variant names the compiled kernel implementation; it is stamped
// into bench metadata so trajectories never compare across variants.
func Variant() string { return "optimized" }

// Cells2 computes out[r] = a[r]*s0 + b[r] for every row.
func Cells2(out []int, a, b []int32, s0 int) {
	n := len(out)
	if len(a) < n || len(b) < n {
		panic("kernels: column shorter than out")
	}
	r := 0
	for ; r+8 <= n; r += 8 {
		o := out[r : r+8 : r+8]
		av := a[r : r+8 : r+8]
		bv := b[r : r+8 : r+8]
		o[0] = int(av[0])*s0 + int(bv[0])
		o[1] = int(av[1])*s0 + int(bv[1])
		o[2] = int(av[2])*s0 + int(bv[2])
		o[3] = int(av[3])*s0 + int(bv[3])
		o[4] = int(av[4])*s0 + int(bv[4])
		o[5] = int(av[5])*s0 + int(bv[5])
		o[6] = int(av[6])*s0 + int(bv[6])
		o[7] = int(av[7])*s0 + int(bv[7])
	}
	for ; r < n; r++ {
		out[r] = int(a[r])*s0 + int(b[r])
	}
}

// Cells3 computes out[r] = a[r]*s0 + b[r]*s1 + c[r] for every row.
func Cells3(out []int, a, b, c []int32, s0, s1 int) {
	n := len(out)
	if len(a) < n || len(b) < n || len(c) < n {
		panic("kernels: column shorter than out")
	}
	r := 0
	for ; r+8 <= n; r += 8 {
		o := out[r : r+8 : r+8]
		av := a[r : r+8 : r+8]
		bv := b[r : r+8 : r+8]
		cv := c[r : r+8 : r+8]
		o[0] = int(av[0])*s0 + int(bv[0])*s1 + int(cv[0])
		o[1] = int(av[1])*s0 + int(bv[1])*s1 + int(cv[1])
		o[2] = int(av[2])*s0 + int(bv[2])*s1 + int(cv[2])
		o[3] = int(av[3])*s0 + int(bv[3])*s1 + int(cv[3])
		o[4] = int(av[4])*s0 + int(bv[4])*s1 + int(cv[4])
		o[5] = int(av[5])*s0 + int(bv[5])*s1 + int(cv[5])
		o[6] = int(av[6])*s0 + int(bv[6])*s1 + int(cv[6])
		o[7] = int(av[7])*s0 + int(bv[7])*s1 + int(cv[7])
	}
	for ; r < n; r++ {
		out[r] = int(a[r])*s0 + int(b[r])*s1 + int(c[r])
	}
}

// AccumStride adds col[r]*s into out[r] (or initializes out when
// init is set) — one column of a generic marginal cell computation.
func AccumStride(out []int, col []int32, s int, init bool) {
	n := len(out)
	if len(col) < n {
		panic("kernels: column shorter than out")
	}
	r := 0
	if init {
		for ; r+8 <= n; r += 8 {
			o := out[r : r+8 : r+8]
			cv := col[r : r+8 : r+8]
			o[0] = int(cv[0]) * s
			o[1] = int(cv[1]) * s
			o[2] = int(cv[2]) * s
			o[3] = int(cv[3]) * s
			o[4] = int(cv[4]) * s
			o[5] = int(cv[5]) * s
			o[6] = int(cv[6]) * s
			o[7] = int(cv[7]) * s
		}
		for ; r < n; r++ {
			out[r] = int(col[r]) * s
		}
		return
	}
	for ; r+8 <= n; r += 8 {
		o := out[r : r+8 : r+8]
		cv := col[r : r+8 : r+8]
		o[0] += int(cv[0]) * s
		o[1] += int(cv[1]) * s
		o[2] += int(cv[2]) * s
		o[3] += int(cv[3]) * s
		o[4] += int(cv[4]) * s
		o[5] += int(cv[5]) * s
		o[6] += int(cv[6]) * s
		o[7] += int(cv[7]) * s
	}
	for ; r < n; r++ {
		out[r] += int(col[r]) * s
	}
}

// tallyOne folds one cell into the stamped arena, appending
// first-seen cells to touched.
func tallyOne[F Float](c int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	if stamp[c] != epoch {
		stamp[c] = epoch
		vals[c] = 1
		touched = append(touched, c)
	} else {
		vals[c]++
	}
	return touched
}

// Tally counts rows per cell into the epoch-stamped dense arena and
// appends first-seen cells to touched. See refTally for semantics.
func Tally[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	n := len(cells)
	r := 0
	for ; r+8 <= n; r += 8 {
		cv := cells[r : r+8 : r+8]
		touched = tallyOne(cv[0], vals, stamp, epoch, touched)
		touched = tallyOne(cv[1], vals, stamp, epoch, touched)
		touched = tallyOne(cv[2], vals, stamp, epoch, touched)
		touched = tallyOne(cv[3], vals, stamp, epoch, touched)
		touched = tallyOne(cv[4], vals, stamp, epoch, touched)
		touched = tallyOne(cv[5], vals, stamp, epoch, touched)
		touched = tallyOne(cv[6], vals, stamp, epoch, touched)
		touched = tallyOne(cv[7], vals, stamp, epoch, touched)
	}
	for ; r < n; r++ {
		touched = tallyOne(cells[r], vals, stamp, epoch, touched)
	}
	return touched
}

// TallyRange is Tally restricted to cells in [lo, hi) — one pass of
// the L2-blocked tally. Most cells miss the block, so the unrolled
// body front-loads the cheap range test.
func TallyRange[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, lo, hi int, touched []int) []int {
	n := len(cells)
	r := 0
	for ; r+8 <= n; r += 8 {
		cv := cells[r : r+8 : r+8]
		for i := 0; i < 8; i++ {
			c := cv[i]
			if c < lo || c >= hi {
				continue
			}
			touched = tallyOne(c, vals, stamp, epoch, touched)
		}
	}
	for ; r < n; r++ {
		c := cells[r]
		if c < lo || c >= hi {
			continue
		}
		touched = tallyOne(c, vals, stamp, epoch, touched)
	}
	return touched
}

// Cells2Tally fuses the two-attribute cell computation with Tally,
// recording per-row cells in cellOf.
func Cells2Tally[F Float](cellOf []int, a, b []int32, s0 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	n := len(cellOf)
	if len(a) < n || len(b) < n {
		panic("kernels: column shorter than cellOf")
	}
	r := 0
	for ; r+8 <= n; r += 8 {
		o := cellOf[r : r+8 : r+8]
		av := a[r : r+8 : r+8]
		bv := b[r : r+8 : r+8]
		o[0] = int(av[0])*s0 + int(bv[0])
		o[1] = int(av[1])*s0 + int(bv[1])
		o[2] = int(av[2])*s0 + int(bv[2])
		o[3] = int(av[3])*s0 + int(bv[3])
		o[4] = int(av[4])*s0 + int(bv[4])
		o[5] = int(av[5])*s0 + int(bv[5])
		o[6] = int(av[6])*s0 + int(bv[6])
		o[7] = int(av[7])*s0 + int(bv[7])
		touched = tallyOne(o[0], vals, stamp, epoch, touched)
		touched = tallyOne(o[1], vals, stamp, epoch, touched)
		touched = tallyOne(o[2], vals, stamp, epoch, touched)
		touched = tallyOne(o[3], vals, stamp, epoch, touched)
		touched = tallyOne(o[4], vals, stamp, epoch, touched)
		touched = tallyOne(o[5], vals, stamp, epoch, touched)
		touched = tallyOne(o[6], vals, stamp, epoch, touched)
		touched = tallyOne(o[7], vals, stamp, epoch, touched)
	}
	for ; r < n; r++ {
		c := int(a[r])*s0 + int(b[r])
		cellOf[r] = c
		touched = tallyOne(c, vals, stamp, epoch, touched)
	}
	return touched
}

// Cells3Tally fuses the three-attribute cell computation with Tally.
func Cells3Tally[F Float](cellOf []int, a, b, c []int32, s0, s1 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	n := len(cellOf)
	if len(a) < n || len(b) < n || len(c) < n {
		panic("kernels: column shorter than cellOf")
	}
	r := 0
	for ; r+8 <= n; r += 8 {
		o := cellOf[r : r+8 : r+8]
		av := a[r : r+8 : r+8]
		bv := b[r : r+8 : r+8]
		cv := c[r : r+8 : r+8]
		o[0] = int(av[0])*s0 + int(bv[0])*s1 + int(cv[0])
		o[1] = int(av[1])*s0 + int(bv[1])*s1 + int(cv[1])
		o[2] = int(av[2])*s0 + int(bv[2])*s1 + int(cv[2])
		o[3] = int(av[3])*s0 + int(bv[3])*s1 + int(cv[3])
		o[4] = int(av[4])*s0 + int(bv[4])*s1 + int(cv[4])
		o[5] = int(av[5])*s0 + int(bv[5])*s1 + int(cv[5])
		o[6] = int(av[6])*s0 + int(bv[6])*s1 + int(cv[6])
		o[7] = int(av[7])*s0 + int(bv[7])*s1 + int(cv[7])
		touched = tallyOne(o[0], vals, stamp, epoch, touched)
		touched = tallyOne(o[1], vals, stamp, epoch, touched)
		touched = tallyOne(o[2], vals, stamp, epoch, touched)
		touched = tallyOne(o[3], vals, stamp, epoch, touched)
		touched = tallyOne(o[4], vals, stamp, epoch, touched)
		touched = tallyOne(o[5], vals, stamp, epoch, touched)
		touched = tallyOne(o[6], vals, stamp, epoch, touched)
		touched = tallyOne(o[7], vals, stamp, epoch, touched)
	}
	for ; r < n; r++ {
		cc := int(a[r])*s0 + int(b[r])*s1 + int(c[r])
		cellOf[r] = cc
		touched = tallyOne(cc, vals, stamp, epoch, touched)
	}
	return touched
}

// GapSweep classifies every cell of the dense arena against its
// target in ascending-cell order (see refGapSweep for the full
// semantics). The optimized body scans the stamp array in 8-cell
// windows: a window with no live cell only drains target cells, so
// the per-cell classification runs only where counts actually
// landed. Term order is ascending-cell either way — byte-identical
// to the reference.
func GapSweep[F Float](vals []F, stamp []uint32, epoch uint32, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	cells := len(counts)
	if len(vals) < cells || len(stamp) < cells {
		panic("kernels: arena shorter than counts")
	}
	vals = vals[:cells:cells]
	stamp = stamp[:cells:cells]
	var l1 float64
	ki, kn := 0, len(tcells)
	c := 0
	for ; c+8 <= cells; c += 8 {
		s := stamp[c : c+8 : c+8]
		if s[0] != epoch && s[1] != epoch && s[2] != epoch && s[3] != epoch &&
			s[4] != epoch && s[5] != epoch && s[6] != epoch && s[7] != epoch {
			// No counted cell in the window: only target cells
			// contribute, each as a full-gap under. tcells is
			// ascending, so this preserves ascending-cell order.
			for ki < kn && tcells[ki] < c+8 {
				tc := tcells[ki]
				gap := counts[tc]
				l1 += gap
				under = append(under, CellGap{tc, gap})
				ki++
			}
			continue
		}
		for i := c; i < c+8; i++ {
			live := s[i-c] == epoch
			if ki < kn && tcells[ki] == i {
				ki++
				if !live {
					gap := counts[i]
					l1 += gap
					under = append(under, CellGap{i, gap})
					continue
				}
			} else if !live {
				continue
			}
			d := float64(vals[i]) - counts[i]
			l1 += math.Abs(d)
			if d > dust {
				over = append(over, CellGap{i, d})
			} else if d < -dust {
				under = append(under, CellGap{i, -d})
			}
		}
	}
	for ; c < cells; c++ {
		live := stamp[c] == epoch
		if ki < kn && tcells[ki] == c {
			ki++
			if !live {
				gap := counts[c]
				l1 += gap
				under = append(under, CellGap{c, gap})
				continue
			}
		} else if !live {
			continue
		}
		d := float64(vals[c]) - counts[c]
		l1 += math.Abs(d)
		if d > dust {
			over = append(over, CellGap{c, d})
		} else if d < -dust {
			under = append(under, CellGap{c, -d})
		}
	}
	return over, under, l1
}

// GapMerge is the sorted-touched twin of GapSweep for large cell
// spaces. The merge is pointer-chasing either way; the reference
// loop is already optimal.
func GapMerge[F Float](touched []int, vals []F, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	return refGapMerge(touched, vals, counts, tcells, dust, over, under)
}

// PoolScan collects donor rows in row order, consuming per-cell
// quotas from the stamped arena; want (the summed quota) bounds the
// scan — once every quota unit is consumed no later row can qualify.
func PoolScan[F Float](cellOf []int, vals []F, stamp []uint32, epoch uint32, pool []int, want int) []int {
	n := len(cellOf)
	r := 0
	for ; r+8 <= n && want > 0; r += 8 {
		cv := cellOf[r : r+8 : r+8]
		for i := 0; i < 8; i++ {
			c := cv[i]
			if stamp[c] == epoch && vals[c] >= 1 {
				vals[c]--
				pool = append(pool, r+i)
				want--
			}
		}
	}
	for ; r < n && want > 0; r++ {
		c := cellOf[r]
		if stamp[c] == epoch && vals[c] >= 1 {
			vals[c]--
			pool = append(pool, r)
			want--
		}
	}
	return pool
}

// RepScan records the first representative row of each stamped cell,
// stopping once need cells are resolved.
func RepScan(cellOf []int, rep []int32, stamp []uint32, epoch uint32, need int) {
	n := len(cellOf)
	r := 0
	for ; r+8 <= n && need > 0; r += 8 {
		cv := cellOf[r : r+8 : r+8]
		for i := 0; i < 8; i++ {
			if c := cv[i]; stamp[c] == epoch && rep[c] < 0 {
				rep[c] = int32(r + i)
				if need--; need == 0 {
					return
				}
			}
		}
	}
	for ; r < n && need > 0; r++ {
		if c := cellOf[r]; stamp[c] == epoch && rep[c] < 0 {
			rep[c] = int32(r)
			need--
		}
	}
}
