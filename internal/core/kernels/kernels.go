// Package kernels holds the innermost row- and cell-sweep loops of
// GUM planning and marginal tallying — the memory-bound hot paths
// under the synthesis stage (~90% of end-to-end runtime, §3.1 of the
// paper). The package compiles in one of two interchangeable
// variants selected by build tag:
//
//   - default ("optimized"): 8-lane unrolled, bounds-check-hinted
//     kernels, plus a windowed fast-skip in the gap sweep;
//   - -tags purego ("purego"): the straight-line reference loops in
//     ref.go, re-exported unchanged.
//
// The two variants are byte-identical by contract: same counts, same
// touched/over/under/pool contents in the same order, same float
// accumulation order. CI enforces this three ways — the in-package
// equivalence tests and FuzzKernelTally compare every exported
// kernel against its reference, the purego CI job runs the whole
// core/marginal suite with -tags purego under -race, and the
// cross-variant DETHASH step diffs the full-pipeline fingerprint of
// both builds.
//
// Every kernel that touches dense cell values is generic over the
// cell element type (float32 or float64): GUM's Cells32 mode halves
// the dense arena's cache footprint by storing counts and quotas as
// float32. Cell counts and move quotas are integers well below 2²⁴,
// so the narrowing is exact and Cells32 output is byte-identical to
// the float64 arena (see the GUMConfig.Cells32 docs for the
// contract and its bound).
package kernels

// Float is the dense cell element type: float64 (the default arena)
// or float32 (GUM's Cells32 mode).
type Float interface {
	~float32 | ~float64
}

// CellGap is one cell's distance from its target count. GUM's
// over/under gap lists are built from these by the gap sweep.
type CellGap struct {
	Cell int
	Gap  float64
}
