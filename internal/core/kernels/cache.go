package kernels

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// l2Fallback is used when the cache topology cannot be probed
// (non-Linux, restricted /sys, exotic layouts). 1 MiB is a
// conservative lower bound for server parts from the last decade —
// undersizing a tile only costs extra passes, never correctness.
const l2Fallback = 1 << 20

var l2Probe = sync.OnceValue(func() int {
	return probeSysfsL2("/sys/devices/system/cpu/cpu0/cache")
})

// L2Bytes reports the per-core L2 data-cache size in bytes, probed
// once from sysfs with a 1 MiB fallback. GUM sizes its blocked-tally
// tiles from this so dense arenas larger than L2 are swept in
// cache-resident column blocks.
func L2Bytes() int {
	return l2Probe()
}

func probeSysfsL2(dir string) int {
	for idx := 0; idx < 10; idx++ {
		base := dir + "/index" + strconv.Itoa(idx) + "/"
		lvl, err := os.ReadFile(base + "level")
		if err != nil {
			break
		}
		if strings.TrimSpace(string(lvl)) != "2" {
			continue
		}
		// Skip instruction-only caches; "Data" and "Unified" both
		// hold our arenas.
		if typ, err := os.ReadFile(base + "type"); err == nil &&
			strings.TrimSpace(string(typ)) == "Instruction" {
			continue
		}
		raw, err := os.ReadFile(base + "size")
		if err != nil {
			continue
		}
		if n := parseCacheSize(strings.TrimSpace(string(raw))); n > 0 {
			return n
		}
	}
	return l2Fallback
}

// parseCacheSize parses sysfs cache sizes ("2048K", "1M", "512").
// Returns 0 on malformed input or values outside [64 KiB, 64 MiB] —
// a clamp against garbage from broken virtualized topologies.
func parseCacheSize(s string) int {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	b := n * mult
	if b < 64<<10 || b > 64<<20 {
		return 0
	}
	return b
}
