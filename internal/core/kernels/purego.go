//go:build purego

package kernels

// The purego variant: every exported kernel is the reference loop
// from ref.go, unchanged. This build exists so the optimized kernels
// can never silently drift — CI runs the full core/marginal suite
// with -tags purego under -race and diffs the DETHASH fingerprint
// against the default build.

// Variant names the compiled kernel implementation; it is stamped
// into bench metadata so trajectories never compare across variants.
func Variant() string { return "purego" }

// Cells2 computes out[r] = a[r]*s0 + b[r] for every row.
func Cells2(out []int, a, b []int32, s0 int) { refCells2(out, a, b, s0) }

// Cells3 computes out[r] = a[r]*s0 + b[r]*s1 + c[r] for every row.
func Cells3(out []int, a, b, c []int32, s0, s1 int) { refCells3(out, a, b, c, s0, s1) }

// AccumStride adds col[r]*s into out[r] (or initializes out when
// init is set) — one column of a generic marginal cell computation.
func AccumStride(out []int, col []int32, s int, init bool) { refAccumStride(out, col, s, init) }

// Tally counts rows per cell into the epoch-stamped dense arena and
// appends first-seen cells to touched. See refTally for semantics.
func Tally[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	return refTally(cells, vals, stamp, epoch, touched)
}

// TallyRange is Tally restricted to cells in [lo, hi) — one pass of
// the L2-blocked tally.
func TallyRange[F Float](cells []int, vals []F, stamp []uint32, epoch uint32, lo, hi int, touched []int) []int {
	return refTallyRange(cells, vals, stamp, epoch, lo, hi, touched)
}

// Cells2Tally fuses the two-attribute cell computation with Tally,
// recording per-row cells in cellOf.
func Cells2Tally[F Float](cellOf []int, a, b []int32, s0 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	return refCells2Tally(cellOf, a, b, s0, vals, stamp, epoch, touched)
}

// Cells3Tally fuses the three-attribute cell computation with Tally.
func Cells3Tally[F Float](cellOf []int, a, b, c []int32, s0, s1 int, vals []F, stamp []uint32, epoch uint32, touched []int) []int {
	return refCells3Tally(cellOf, a, b, c, s0, s1, vals, stamp, epoch, touched)
}

// GapSweep classifies every cell of the dense arena against its
// target in ascending-cell order. See refGapSweep for semantics.
func GapSweep[F Float](vals []F, stamp []uint32, epoch uint32, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	return refGapSweep(vals, stamp, epoch, counts, tcells, dust, over, under)
}

// GapMerge is the sorted-touched twin of GapSweep for large cell
// spaces. See refGapMerge for semantics.
func GapMerge[F Float](touched []int, vals []F, counts []float64, tcells []int, dust float64, over, under []CellGap) ([]CellGap, []CellGap, float64) {
	return refGapMerge(touched, vals, counts, tcells, dust, over, under)
}

// PoolScan collects donor rows in row order, consuming per-cell
// quotas from the stamped arena; want (the summed quota) bounds the
// scan.
func PoolScan[F Float](cellOf []int, vals []F, stamp []uint32, epoch uint32, pool []int, want int) []int {
	return refPoolScan(cellOf, vals, stamp, epoch, pool, want)
}

// RepScan records the first representative row of each stamped cell,
// stopping once need cells are resolved.
func RepScan(cellOf []int, rep []int32, stamp []uint32, epoch uint32, need int) {
	refRepScan(cellOf, rep, stamp, epoch, need)
}
