package kernels

import (
	"bytes"
	"testing"
)

// FuzzKernelTally feeds arbitrary encoded rows through the compiled
// tally kernels and the reference loops and requires byte-identical
// results: same cellOf, same touched order, same counts, same stamps.
// The CI fuzz-smoke job runs this for a bounded time in the default
// build, where the kernels under test are the optimized 8-lane
// bodies; the corpus doubles as a regression suite under -tags
// purego.
func FuzzKernelTally(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(5), uint8(3), uint8(2))
	f.Add([]byte{}, uint8(1), uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte{0xff, 0, 7}, 23), uint8(16), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, d0, d1, d2 uint8) {
		// Decode the fuzz input into three attribute columns over
		// small domains; every byte lands in range, so all inputs are
		// valid encoded rows.
		doms := [3]int{int(d0%32) + 1, int(d1%32) + 1, int(d2%32) + 1}
		n := len(raw) / 3
		cols := make([][]int32, 3)
		for i := range cols {
			cols[i] = make([]int32, n)
			for r := 0; r < n; r++ {
				cols[i][r] = int32(int(raw[r*3+i]) % doms[i])
			}
		}
		cells := doms[0] * doms[1] * doms[2]
		s1 := doms[2]
		s0 := doms[1] * s1
		const epoch = 3

		check := func(tag string, cellOf, refCellOf, touched, refTouched []int, vals, refVals []float64, stamp, refStamp []uint32) {
			t.Helper()
			if !intsEqual(cellOf, refCellOf) {
				t.Fatalf("%s: cellOf diverges", tag)
			}
			if !intsEqual(touched, refTouched) {
				t.Fatalf("%s: touched diverges", tag)
			}
			for c := 0; c < cells; c++ {
				if stamp[c] != refStamp[c] {
					t.Fatalf("%s: stamp[%d] = %d, reference %d", tag, c, stamp[c], refStamp[c])
				}
				if stamp[c] == epoch && vals[c] != refVals[c] {
					t.Fatalf("%s: vals[%d] = %v, reference %v", tag, c, vals[c], refVals[c])
				}
			}
		}

		// 3-way fused kernel.
		cellOf := make([]int, n)
		refCellOf := make([]int, n)
		vals := make([]float64, cells)
		refVals := make([]float64, cells)
		stamp := make([]uint32, cells)
		refStamp := make([]uint32, cells)
		touched := Cells3Tally(cellOf, cols[0], cols[1], cols[2], s0, s1, vals, stamp, epoch, nil)
		refTouched := refCells3Tally(refCellOf, cols[0], cols[1], cols[2], s0, s1, refVals, refStamp, epoch, nil)
		check("Cells3Tally", cellOf, refCellOf, touched, refTouched, vals, refVals, stamp, refStamp)

		// 2-way fused kernel over the first two columns.
		cells2 := doms[0] * doms[1]
		vals2 := make([]float64, cells2)
		refVals2 := make([]float64, cells2)
		stamp2 := make([]uint32, cells2)
		refStamp2 := make([]uint32, cells2)
		touched = Cells2Tally(cellOf, cols[0], cols[1], doms[1], vals2, stamp2, epoch, nil)
		refTouched = refCells2Tally(refCellOf, cols[0], cols[1], doms[1], refVals2, refStamp2, epoch, nil)
		if !intsEqual(cellOf, refCellOf) || !intsEqual(touched, refTouched) {
			t.Fatal("Cells2Tally diverges")
		}

		// Plain + blocked tallies over the 3-way cells: the blocked
		// union must match the flat tally cell for cell.
		clear(vals)
		clear(stamp)
		flat := Tally(refCellOf, vals, stamp, epoch, nil)
		clear(refVals)
		clear(refStamp)
		var blocked []int
		block := cells/3 + 1
		for lo := 0; lo < cells; lo += block {
			hi := min(lo+block, cells)
			blocked = TallyRange(refCellOf, refVals, refStamp, epoch, lo, hi, blocked)
		}
		if len(flat) != len(blocked) {
			t.Fatalf("blocked touched %d cells, flat %d", len(blocked), len(flat))
		}
		for c := 0; c < cells; c++ {
			if stamp[c] != refStamp[c] || (stamp[c] == epoch && vals[c] != refVals[c]) {
				t.Fatalf("blocked tally disagrees with flat at cell %d", c)
			}
		}
	})
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
