package kernels

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// The equivalence suite: every exported kernel against its ref.go
// twin, float64 and float32, across shapes that exercise the 8-lane
// bodies, their scalar tails, and empty input. Under -tags purego
// the exports ARE the refs, so these tests pin the reference against
// itself — the cross-variant guarantee then comes from running this
// same suite in the default build.

var rowCases = []int{0, 1, 7, 8, 9, 15, 16, 63, 257, 2000}

func randCols(rng *rand.Rand, n int, doms ...int) [][]int32 {
	cols := make([][]int32, len(doms))
	for i, d := range doms {
		cols[i] = make([]int32, n)
		for r := range cols[i] {
			cols[i][r] = int32(rng.IntN(d))
		}
	}
	return cols
}

func TestCellsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range rowCases {
		cols := randCols(rng, n, 16, 9, 11)
		got := make([]int, n)
		want := make([]int, n)

		Cells2(got, cols[0], cols[1], 9)
		refCells2(want, cols[0], cols[1], 9)
		if !slices.Equal(got, want) {
			t.Fatalf("Cells2 n=%d diverges from reference", n)
		}

		Cells3(got, cols[0], cols[1], cols[2], 99, 11)
		refCells3(want, cols[0], cols[1], cols[2], 99, 11)
		if !slices.Equal(got, want) {
			t.Fatalf("Cells3 n=%d diverges from reference", n)
		}

		for i, c := range cols {
			AccumStride(got, c, 3+i, i == 0)
			refAccumStride(want, c, 3+i, i == 0)
			if !slices.Equal(got, want) {
				t.Fatalf("AccumStride n=%d col=%d diverges from reference", n, i)
			}
		}
	}
}

// arena is a pair of tally arenas (kernel under test vs reference)
// over the same cell space.
type arena[F Float] struct {
	vals, refVals   []F
	stamp, refStamp []uint32
	epoch           uint32
}

func newArena[F Float](cells int, epoch uint32) *arena[F] {
	return &arena[F]{
		vals:     make([]F, cells),
		refVals:  make([]F, cells),
		stamp:    make([]uint32, cells),
		refStamp: make([]uint32, cells),
		epoch:    epoch,
	}
}

func (a *arena[F]) check(t *testing.T, tag string, touched, refTouched []int) {
	t.Helper()
	if !slices.Equal(touched, refTouched) {
		t.Fatalf("%s: touched diverges from reference: %v vs %v", tag, touched, refTouched)
	}
	if !slices.Equal(a.stamp, a.refStamp) {
		t.Fatalf("%s: stamp arena diverges from reference", tag)
	}
	for c := range a.vals {
		if a.stamp[c] == a.epoch && a.vals[c] != a.refVals[c] {
			t.Fatalf("%s: vals[%d] = %v, reference %v", tag, c, a.vals[c], a.refVals[c])
		}
	}
}

func testTally[F Float](t *testing.T, tag string) {
	rng := rand.New(rand.NewPCG(3, 4))
	const cells = 16 * 9 * 11
	for _, n := range rowCases {
		cols := randCols(rng, n, 16, 9, 11)
		cellOf := make([]int, n)
		refCellOf := make([]int, n)

		// 2-way fused.
		a := newArena[F](cells, 7)
		got := Cells2Tally(cellOf, cols[0], cols[1], 9, a.vals, a.stamp, a.epoch, nil)
		want := refCells2Tally(refCellOf, cols[0], cols[1], 9, a.refVals, a.refStamp, a.epoch, nil)
		a.check(t, tag+"/Cells2Tally", got, want)
		if !slices.Equal(cellOf, refCellOf) {
			t.Fatalf("%s: Cells2Tally cellOf diverges", tag)
		}

		// 3-way fused.
		a = newArena[F](cells, 9)
		got = Cells3Tally(cellOf, cols[0], cols[1], cols[2], 99, 11, a.vals, a.stamp, a.epoch, nil)
		want = refCells3Tally(refCellOf, cols[0], cols[1], cols[2], 99, 11, a.refVals, a.refStamp, a.epoch, nil)
		a.check(t, tag+"/Cells3Tally", got, want)
		if !slices.Equal(cellOf, refCellOf) {
			t.Fatalf("%s: Cells3Tally cellOf diverges", tag)
		}

		// Plain tally over precomputed cells, then blocked passes over
		// the same rows: same touched SET in block order.
		a = newArena[F](cells, 11)
		got = Tally(cellOf, a.vals, a.stamp, a.epoch, nil)
		want = refTally(refCellOf, a.refVals, a.refStamp, a.epoch, nil)
		a.check(t, tag+"/Tally", got, want)

		a = newArena[F](cells, 13)
		ar := newArena[F](cells, 13)
		got, want = nil, nil
		for lo := 0; lo < cells; lo += 301 {
			hi := min(lo+301, cells)
			got = TallyRange(cellOf, a.vals, a.stamp, a.epoch, lo, hi, got)
			want = refTallyRange(cellOf, ar.refVals, ar.refStamp, a.epoch, lo, hi, want)
		}
		a.refVals, a.refStamp = ar.refVals, ar.refStamp
		a.check(t, tag+"/TallyRange", got, want)
		// Blocked and unblocked tallies agree as sets with identical
		// per-cell counts (order differs by construction).
		flat := newArena[F](cells, 13)
		flatTouched := refTally(cellOf, flat.refVals, flat.refStamp, 13, nil)
		if len(flatTouched) != len(got) {
			t.Fatalf("%s: blocked touched size %d, flat %d", tag, len(got), len(flatTouched))
		}
		for _, c := range got {
			if flat.refStamp[c] != 13 || flat.refVals[c] != a.vals[c] {
				t.Fatalf("%s: blocked cell %d disagrees with flat tally", tag, c)
			}
		}
	}
}

func TestTallyMatchReference(t *testing.T) {
	testTally[float64](t, "f64")
	testTally[float32](t, "f32")
}

func testGapSweep[F Float](t *testing.T, tag string) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, cells := range []int{0, 1, 8, 9, 100, 1584} {
		for trial := 0; trial < 20; trial++ {
			const epoch = 21
			vals := make([]F, cells)
			stamp := make([]uint32, cells)
			counts := make([]float64, cells)
			var touched, tcells []int
			for c := 0; c < cells; c++ {
				if rng.Float64() < 0.4 {
					stamp[c] = epoch
					vals[c] = F(rng.IntN(50))
					touched = append(touched, c)
				}
				counts[c] = rng.Float64() * 40
				if counts[c] > 0.5 {
					tcells = append(tcells, c)
				}
			}
			gotO, gotU, gotL1 := GapSweep(vals, stamp, epoch, counts, tcells, 0.5, nil, nil)
			wantO, wantU, wantL1 := refGapSweep(vals, stamp, epoch, counts, tcells, 0.5, nil, nil)
			if gotL1 != wantL1 || !slices.Equal(gotO, wantO) || !slices.Equal(gotU, wantU) {
				t.Fatalf("%s: GapSweep(cells=%d) diverges from reference", tag, cells)
			}
			// The merge route over the sorted touched set must agree
			// with the sweep byte for byte — that is planUpdate's
			// route-independence contract.
			mO, mU, mL1 := GapMerge(touched, vals, counts, tcells, 0.5, nil, nil)
			if mL1 != wantL1 || !slices.Equal(mO, wantO) || !slices.Equal(mU, wantU) {
				t.Fatalf("%s: GapMerge(cells=%d) diverges from GapSweep", tag, cells)
			}
		}
	}
}

func TestGapSweepMatchReference(t *testing.T) {
	testGapSweep[float64](t, "f64")
	testGapSweep[float32](t, "f32")
}

func testPoolRepScan[F Float](t *testing.T, tag string) {
	rng := rand.New(rand.NewPCG(7, 8))
	const cells = 97
	for _, n := range rowCases {
		cellOf := make([]int, n)
		for r := range cellOf {
			cellOf[r] = rng.IntN(cells)
		}
		const epoch = 31
		vals := make([]F, cells)
		refVals := make([]F, cells)
		stamp := make([]uint32, cells)
		want := 0
		for c := 0; c < cells; c++ {
			if rng.Float64() < 0.3 {
				q := rng.IntN(4)
				stamp[c] = epoch
				vals[c], refVals[c] = F(q), F(q)
				want += q
			}
		}
		gotPool := PoolScan(cellOf, vals, stamp, epoch, nil, want)
		wantPool := refPoolScan(cellOf, refVals, stamp, epoch, nil, want)
		if !slices.Equal(gotPool, wantPool) {
			t.Fatalf("%s: PoolScan(n=%d) diverges from reference", tag, n)
		}
		for c := range vals {
			if stamp[c] == epoch && vals[c] != refVals[c] {
				t.Fatalf("%s: PoolScan leftover quota at cell %d: %v vs %v", tag, c, vals[c], refVals[c])
			}
		}

		rep := make([]int32, cells)
		refRep := make([]int32, cells)
		rstamp := make([]uint32, cells)
		need := 0
		for c := 0; c < cells; c++ {
			rep[c], refRep[c] = -1, -1
			if rng.Float64() < 0.3 {
				rstamp[c] = epoch
				need++
			}
		}
		RepScan(cellOf, rep, rstamp, epoch, need)
		refRepScan(cellOf, refRep, rstamp, epoch, need)
		if !slices.Equal(rep, refRep) {
			t.Fatalf("%s: RepScan(n=%d) diverges from reference", tag, n)
		}
	}
}

func TestPoolRepScanMatchReference(t *testing.T) {
	testPoolRepScan[float64](t, "f64")
	testPoolRepScan[float32](t, "f32")
}

func TestVariantName(t *testing.T) {
	if v := Variant(); v != "optimized" && v != "purego" {
		t.Fatalf("Variant() = %q, want optimized or purego", v)
	}
}

func TestL2BytesSane(t *testing.T) {
	if b := L2Bytes(); b < 64<<10 || b > 64<<20 {
		t.Fatalf("L2Bytes() = %d, outside sane clamp", b)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int{
		"2048K":   2048 << 10,
		"1M":      1 << 20,
		"512K":    512 << 10,
		"65536":   65536,
		"bogus":   0,
		"":        0,
		"4K":      0, // below clamp
		"999999M": 0, // above clamp
		"-2048K":  0,
		"1.5M":    0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Fatalf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestProbeSysfsL2 exercises the probe against a synthetic sysfs
// tree: an instruction L2 to skip, then the unified L2 to pick up,
// and the fallback when nothing parses.
func TestProbeSysfsL2(t *testing.T) {
	dir := t.TempDir()
	write := func(idx int, level, typ, size string) {
		d := filepath.Join(dir, "index"+string(rune('0'+idx)))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]string{"level": level, "type": typ, "size": size} {
			if err := os.WriteFile(filepath.Join(d, name), []byte(v+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, "1", "Data", "32K")
	write(1, "2", "Instruction", "1024K")
	write(2, "2", "Unified", "2048K")
	if got := probeSysfsL2(dir); got != 2048<<10 {
		t.Fatalf("probeSysfsL2 = %d, want %d", got, 2048<<10)
	}
	if got := probeSysfsL2(filepath.Join(dir, "missing")); got != l2Fallback {
		t.Fatalf("probeSysfsL2(missing) = %d, want fallback %d", got, l2Fallback)
	}
}
