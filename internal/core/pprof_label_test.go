package core

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

// TestStagePprofLabels checks that every pipeline stage executes under
// a pprof "stage" label. The StageDone hook fires inside the labeled
// region by contract, so reading the current goroutine's labels from
// the goroutine profile (debug=1 renders them as
// `# labels: {"stage":"gum"}`) must show the stage's own name.
func TestStagePprofLabels(t *testing.T) {
	tbl, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 400, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastPipelineConfig()
	var mu sync.Mutex
	labeled := map[string]bool{}
	cfg.Metrics = &EngineMetrics{
		StageDone: func(stage string, _, _ time.Duration) {
			var buf bytes.Buffer
			if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
				t.Errorf("stage %s: goroutine profile: %v", stage, err)
				return
			}
			mu.Lock()
			labeled[stage] = strings.Contains(buf.String(), `"stage":"`+stage+`"`)
			mu.Unlock()
		},
	}
	if _, err := mustPipeline(t, cfg).Synthesize(tbl); err != nil {
		t.Fatal(err)
	}

	for _, s := range synthStages {
		ok, fired := labeled[s.name]
		if !fired {
			t.Errorf("stage %s: StageDone never fired", s.name)
		} else if !ok {
			t.Errorf("stage %s: goroutine profile missing stage label", s.name)
		}
	}
}

// TestStagePprofLabelComposition checks that stage labels merge with —
// rather than replace — labels already on the calling context. The
// serving layer runs jobs under job_kind/dataset labels and hands the
// labeled context to SynthesizeCtx; every stage's label set must carry
// both. The two keys must appear in the SAME label block (one line in
// the debug=1 rendering), not merely somewhere in the profile.
func TestStagePprofLabelComposition(t *testing.T) {
	tbl, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 400, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastPipelineConfig()
	var mu sync.Mutex
	composed := map[string]bool{}
	cfg.Metrics = &EngineMetrics{
		StageDone: func(stage string, _, _ time.Duration) {
			var buf bytes.Buffer
			if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
				t.Errorf("stage %s: goroutine profile: %v", stage, err)
				return
			}
			ok := false
			for _, line := range strings.Split(buf.String(), "\n") {
				if strings.Contains(line, `"stage":"`+stage+`"`) &&
					strings.Contains(line, `"job_kind":"synthesize"`) {
					ok = true
					break
				}
			}
			mu.Lock()
			composed[stage] = ok
			mu.Unlock()
		},
	}
	p := mustPipeline(t, cfg)
	ctx := context.Background()
	pprof.Do(ctx, pprof.Labels("job_kind", "synthesize"), func(ctx context.Context) {
		if _, err := p.SynthesizeCtx(ctx, tbl); err != nil {
			t.Error(err)
		}
	})

	for _, s := range synthStages {
		ok, fired := composed[s.name]
		if !fired {
			t.Errorf("stage %s: StageDone never fired", s.name)
		} else if !ok {
			t.Errorf("stage %s: label block missing job_kind+stage composition", s.name)
		}
	}
}
