package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

// TestEngineMetricsHooks checks the observability seam: StageDone
// fires once per stage in execution order, Report.Spans mirrors it,
// ActiveWorkers returns to zero after the run, and wiring the hooks
// never changes synthesis output.
func TestEngineMetricsHooks(t *testing.T) {
	tbl, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 600, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}

	base := fastPipelineConfig()
	base.Workers = 4
	plain, err := mustPipeline(t, base).Synthesize(tbl)
	if err != nil {
		t.Fatal(err)
	}

	var active atomic.Int64
	var mu sync.Mutex
	var seen []string
	cfg := base
	cfg.Metrics = &EngineMetrics{
		ActiveWorkers: &active,
		StageDone: func(stage string, wall, busy time.Duration) {
			mu.Lock()
			seen = append(seen, stage)
			mu.Unlock()
			if wall < 0 || busy < 0 {
				t.Errorf("stage %s: negative timing wall=%v busy=%v", stage, wall, busy)
			}
		},
	}
	hooked, err := mustPipeline(t, cfg).Synthesize(tbl)
	if err != nil {
		t.Fatal(err)
	}

	if got := active.Load(); got != 0 {
		t.Errorf("ActiveWorkers = %d after run, want 0", got)
	}
	want := make([]string, len(synthStages))
	for i, s := range synthStages {
		want[i] = s.name
	}
	if len(seen) != len(want) {
		t.Fatalf("StageDone fired for %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("StageDone order %v, want %v", seen, want)
		}
	}
	if len(hooked.Report.Spans) != len(want) {
		t.Fatalf("Report.Spans has %d entries, want %d", len(hooked.Report.Spans), len(want))
	}
	var lastStart time.Time
	for i, sp := range hooked.Report.Spans {
		if sp.Name != want[i] {
			t.Errorf("span %d = %s, want %s", i, sp.Name, want[i])
		}
		if sp.Start.Before(lastStart) {
			t.Errorf("span %d starts before its predecessor", i)
		}
		lastStart = sp.Start
		if sp.Wall < 0 || sp.Busy < 0 {
			t.Errorf("span %s: negative timing", sp.Name)
		}
	}

	var a, b bytes.Buffer
	if err := plain.Table.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := hooked.Table.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("wiring EngineMetrics changed synthesis output")
	}
}

func mustPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
