package core

import (
	"math"
	"math/rand/v2"

	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// gumDust is the gap below which a cell's deficit or excess cannot be
// satisfied by integer record moves: noisy targets spread tiny
// fractional counts over huge cell spaces after projection, and gaps
// below half a record would only soak up the move budget.
const gumDust = 0.5

// gumDenseCellFloor is the cell-space size every marginal may arena
// regardless of the record count; above it a marginal is dense only
// while its cells stay within 4·n (see NewGUM), so the arena's extra
// memory is O(records), never O(domain product).
const gumDenseCellFloor = 1 << 20

// cellGap is one cell's distance from its target count.
type cellGap struct {
	cell int
	gap  float64
}

// gumScratch is one worker's reusable arena for GUM's planning pass.
// It is allocated once per GUM run and reused across every
// (round, marginal) plan handed to that worker slot, so steady-state
// planUpdate allocates ~nothing: every slice below is reset by
// re-slicing to zero length, and the dense arrays are "cleared" by an
// epoch bump (O(touched cells), not O(cell space)).
//
// The arena carries only buffers, never values: planUpdate's output
// is a pure function of (snapshot, target, alpha, seed), so which
// worker's scratch served a task cannot perturb the plan (the engine
// determinism contract, see parallelForWorker).
type gumScratch struct {
	cellOf  []int     // current cell of every snapshot row
	touched []cellGap // cells with nonzero current count, with their counts
	over    []cellGap // cells above target by more than gumDust
	under   []cellGap // cells below target by more than gumDust
	pool    []int     // movable rows drawn from over cells

	// Dense arena, sized to the largest dense-eligible marginal's
	// cell space. vals holds per-cell counts during the tally and
	// per-cell move quotas during the pool scan; rep holds each under
	// cell's representative row (-1 = under member with no rep yet).
	// stamp gates every read: a cell is live only while stamp[c]
	// matches the current phase's epoch, so nothing is ever zeroed
	// wholesale between plans.
	vals  []float64
	rep   []int32
	stamp []uint32
	epoch uint32

	// Sparse fallback for marginals whose projected cell space is too
	// large to arena. The maps are cleared per plan; iteration order
	// never reaches the output (touched cells are extracted and
	// sorted before any ordered use).
	counts map[int]float64
	quota  map[int]float64
	srep   map[int]int

	// Per-plan RNG, reseeded for every (round, marginal) task so
	// scratch reuse cannot perturb the stream.
	pcg *rand.PCG
	rng *rand.Rand
}

// newGumScratch sizes an arena for rows-record plans; denseCells is
// the largest dense marginal's cell space (0 if every marginal takes
// the sparse path).
func newGumScratch(rows, denseCells int) *gumScratch {
	sc := &gumScratch{
		cellOf: make([]int, rows),
		pcg:    rand.NewPCG(0, 0),
	}
	sc.rng = rand.New(sc.pcg)
	if denseCells > 0 {
		sc.vals = make([]float64, denseCells)
		sc.rep = make([]int32, denseCells)
		sc.stamp = make([]uint32, denseCells)
	}
	return sc
}

// reseed points the scratch RNG at one plan's stream. The derivation
// matches the pre-arena code path (rand.NewPCG per plan) exactly, so
// reuse is invisible in the output.
func (sc *gumScratch) reseed(seed uint64) {
	sc.pcg.Seed(seed, seed^0x6a09e667f3bcc908)
}

// phases advances the arena epoch for one plan and returns the three
// phase stamps: countE marks tallied cells, quotaE marks over cells
// holding move quotas, repE marks under cells holding representative
// rows. The phases run strictly in that order within planUpdate and
// over/under cells are disjoint, so later stamps only ever overwrite
// state the plan has finished reading. Near uint32 wraparound the
// stamp array is zeroed once so a stale stamp from ~4 billion plans
// ago cannot read as live.
func (sc *gumScratch) phases() (countE, quotaE, repE uint32) {
	if sc.epoch > math.MaxUint32-3 {
		clear(sc.stamp)
		sc.epoch = 0
	}
	sc.epoch += 3
	return sc.epoch - 2, sc.epoch - 1, sc.epoch
}

// denseTally fills cellOf with every snapshot row's flattened cell
// and tallies the counts into the arena at the current count epoch,
// leaving touched holding every nonzero cell with its final count
// (unsorted, first-touch order) — the same shape sparseTally
// produces, so planUpdate's over/under merge is mode-blind. The
// stride accumulation and the count pass are fused into ONE row
// sweep — not len(Attrs) accumulation passes plus a count pass —
// with the 2- and 3-way shapes 8-lane unrolled.
func (sc *gumScratch) denseTally(ds *dataset.Encoded, m *marginal.Marginal) {
	n := ds.NumRows()
	cellOf := sc.cellOf[:n]
	vals, stamp := sc.vals, sc.stamp
	e := sc.epoch - 2 // countE from phases()
	touched := sc.touched[:0]
	attrs, strides := m.Attrs, m.Strides()
	switch len(attrs) {
	case 1:
		col := ds.Cols[attrs[0]][:n]
		for r, c := range col {
			cellOf[r] = int(c)
		}
	case 2:
		a := ds.Cols[attrs[0]][:n]
		b := ds.Cols[attrs[1]][:n]
		s0 := strides[0]
		r := 0
		for ; r+8 <= n; r += 8 {
			cellOf[r+0] = int(a[r+0])*s0 + int(b[r+0])
			cellOf[r+1] = int(a[r+1])*s0 + int(b[r+1])
			cellOf[r+2] = int(a[r+2])*s0 + int(b[r+2])
			cellOf[r+3] = int(a[r+3])*s0 + int(b[r+3])
			cellOf[r+4] = int(a[r+4])*s0 + int(b[r+4])
			cellOf[r+5] = int(a[r+5])*s0 + int(b[r+5])
			cellOf[r+6] = int(a[r+6])*s0 + int(b[r+6])
			cellOf[r+7] = int(a[r+7])*s0 + int(b[r+7])
			for _, c := range cellOf[r : r+8] {
				if stamp[c] != e {
					stamp[c] = e
					vals[c] = 1
					touched = append(touched, cellGap{cell: c})
				} else {
					vals[c]++
				}
			}
		}
		for ; r < n; r++ {
			c := int(a[r])*s0 + int(b[r])
			cellOf[r] = c
			if stamp[c] != e {
				stamp[c] = e
				vals[c] = 1
				touched = append(touched, cellGap{cell: c})
			} else {
				vals[c]++
			}
		}
		sc.finishDenseTally(touched)
		return
	case 3:
		a := ds.Cols[attrs[0]][:n]
		b := ds.Cols[attrs[1]][:n]
		c3 := ds.Cols[attrs[2]][:n]
		s0, s1 := strides[0], strides[1]
		r := 0
		for ; r+8 <= n; r += 8 {
			cellOf[r+0] = int(a[r+0])*s0 + int(b[r+0])*s1 + int(c3[r+0])
			cellOf[r+1] = int(a[r+1])*s0 + int(b[r+1])*s1 + int(c3[r+1])
			cellOf[r+2] = int(a[r+2])*s0 + int(b[r+2])*s1 + int(c3[r+2])
			cellOf[r+3] = int(a[r+3])*s0 + int(b[r+3])*s1 + int(c3[r+3])
			cellOf[r+4] = int(a[r+4])*s0 + int(b[r+4])*s1 + int(c3[r+4])
			cellOf[r+5] = int(a[r+5])*s0 + int(b[r+5])*s1 + int(c3[r+5])
			cellOf[r+6] = int(a[r+6])*s0 + int(b[r+6])*s1 + int(c3[r+6])
			cellOf[r+7] = int(a[r+7])*s0 + int(b[r+7])*s1 + int(c3[r+7])
			for _, c := range cellOf[r : r+8] {
				if stamp[c] != e {
					stamp[c] = e
					vals[c] = 1
					touched = append(touched, cellGap{cell: c})
				} else {
					vals[c]++
				}
			}
		}
		for ; r < n; r++ {
			c := int(a[r])*s0 + int(b[r])*s1 + int(c3[r])
			cellOf[r] = c
			if stamp[c] != e {
				stamp[c] = e
				vals[c] = 1
				touched = append(touched, cellGap{cell: c})
			} else {
				vals[c]++
			}
		}
		sc.finishDenseTally(touched)
		return
	default:
		m.CellsInto(ds, cellOf)
	}
	// 1-way and generic shapes: cellOf is filled, tally it.
	for _, c := range cellOf {
		if stamp[c] != e {
			stamp[c] = e
			vals[c] = 1
			touched = append(touched, cellGap{cell: c})
		} else {
			vals[c]++
		}
	}
	sc.finishDenseTally(touched)
}

// finishDenseTally copies each touched cell's final count out of the
// arena so touched matches sparseTally's (cell, count) shape.
func (sc *gumScratch) finishDenseTally(touched []cellGap) {
	for i := range touched {
		touched[i].gap = sc.vals[touched[i].cell]
	}
	sc.touched = touched
}

// sparseTally is denseTally's fallback for cell spaces too large to
// arena: counts live in a map, then the touched set is extracted so
// the caller can order it deterministically.
func (sc *gumScratch) sparseTally(ds *dataset.Encoded, m *marginal.Marginal) {
	n := ds.NumRows()
	cellOf := sc.cellOf[:n]
	m.CellsInto(ds, cellOf)
	if sc.counts == nil {
		sc.counts = make(map[int]float64, n)
		sc.quota = make(map[int]float64)
		sc.srep = make(map[int]int)
	} else {
		clear(sc.counts)
	}
	for _, c := range cellOf {
		sc.counts[c]++
	}
	touched := sc.touched[:0]
	for c, cnt := range sc.counts {
		touched = append(touched, cellGap{cell: c, gap: cnt})
	}
	sc.touched = touched
}
