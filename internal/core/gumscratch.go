package core

import (
	"math"
	"math/rand/v2"

	"github.com/netdpsyn/netdpsyn/internal/core/kernels"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

// gumDust is the gap below which a cell's deficit or excess cannot be
// satisfied by integer record moves: noisy targets spread tiny
// fractional counts over huge cell spaces after projection, and gaps
// below half a record would only soak up the move budget.
const gumDust = 0.5

// gumDenseCellFloor is the cell-space size every marginal may arena
// regardless of the record count; above it a marginal is dense only
// while its cells stay within 4·n (see NewGUM), so the arena's extra
// memory is O(records), never O(domain product).
const gumDenseCellFloor = 1 << 20

// gumSweepFactor gates the linear gap sweep: when the marginal's cell
// space is at most this many times the touched+target set, a single
// ascending pass over the arena (kernels.GapSweep) replaces the
// per-plan sort of the touched cells — the sort was ~a third of gum
// wall. Beyond that the touched set is sorted and merged instead
// (kernels.GapMerge); both orders are ascending-cell, so the plans
// are byte-identical. Var, not const: the equivalence tests pin it to
// 0 / huge to force each path.
var gumSweepFactor = 8

// gumTileBytes is the dense-arena footprint (vals + stamp) above
// which the tally runs in cell-blocked passes sized to stay
// L2-resident, instead of one scatter pass over the whole arena.
// Probed once from sysfs with a safe fallback. Var for tests.
var gumTileBytes = kernels.L2Bytes()

// gumTileMaxPasses caps how many blocked passes a single tally may
// take: each pass re-reads the cellOf stream, so past this point the
// stream traffic outweighs the locality win and one scatter pass is
// cheaper.
const gumTileMaxPasses = 8

// cellGap is one cell's distance from its target count.
type cellGap = kernels.CellGap

// gumScratch is one worker's reusable arena for GUM's planning pass.
// It is allocated once per GUM run and reused across every
// (round, marginal) plan handed to that worker slot, so steady-state
// planUpdate allocates ~nothing: every slice below is reset by
// re-slicing to zero length, and the dense arrays are "cleared" by an
// epoch bump (O(touched cells), not O(cell space)).
//
// The arena carries only buffers, never values: planUpdate's output
// is a pure function of (snapshot, target, alpha, seed), so which
// worker's scratch served a task cannot perturb the plan (the engine
// determinism contract, see parallelForWorker).
type gumScratch struct {
	cellOf  []int     // current cell of every snapshot row
	touched []int     // cells with nonzero current count, first-touch order
	over    []cellGap // cells above target by more than gumDust
	under   []cellGap // cells below target by more than gumDust
	pool    []int     // movable rows drawn from over cells

	// Dense arena, sized to the largest dense-eligible marginal's
	// cell space. Exactly one of vals/vals32 is allocated (Cells32
	// selects float32 cells, halving the arena's cache footprint);
	// the chosen array holds per-cell counts during the tally and
	// per-cell move quotas during the pool scan. rep holds each under
	// cell's representative row (-1 = under member with no rep yet).
	// stamp gates every read: a cell is live only while stamp[c]
	// matches the current phase's epoch, so nothing is ever zeroed
	// wholesale between plans.
	vals   []float64
	vals32 []float32
	rep    []int32
	stamp  []uint32
	epoch  uint32

	// Sparse fallback for marginals whose projected cell space is too
	// large to arena. The maps are cleared per plan; iteration order
	// never reaches the output (touched cells are extracted and
	// sorted before any ordered use).
	counts map[int]float64
	quota  map[int]float64
	srep   map[int]int

	// Per-plan RNG, reseeded for every (round, marginal) task so
	// scratch reuse cannot perturb the stream.
	pcg *rand.PCG
	rng *rand.Rand
}

// newGumScratch sizes an arena for rows-record plans; denseCells is
// the largest dense marginal's cell space (0 if every marginal takes
// the sparse path). cells32 picks the float32 arena.
func newGumScratch(rows, denseCells int, cells32 bool) *gumScratch {
	sc := &gumScratch{
		cellOf: make([]int, rows),
		pcg:    rand.NewPCG(0, 0),
	}
	sc.rng = rand.New(sc.pcg)
	if denseCells > 0 {
		if cells32 {
			sc.vals32 = make([]float32, denseCells)
		} else {
			sc.vals = make([]float64, denseCells)
		}
		sc.rep = make([]int32, denseCells)
		sc.stamp = make([]uint32, denseCells)
	}
	return sc
}

// reseed points the scratch RNG at one plan's stream. The derivation
// matches the pre-arena code path (rand.NewPCG per plan) exactly, so
// reuse is invisible in the output.
func (sc *gumScratch) reseed(seed uint64) {
	sc.pcg.Seed(seed, seed^0x6a09e667f3bcc908)
}

// phases advances the arena epoch for one plan and returns the three
// phase stamps: countE marks tallied cells, quotaE marks over cells
// holding move quotas, repE marks under cells holding representative
// rows. The phases run strictly in that order within planUpdate and
// over/under cells are disjoint, so later stamps only ever overwrite
// state the plan has finished reading. Near uint32 wraparound the
// stamp array is zeroed once so a stale stamp from ~4 billion plans
// ago cannot read as live.
func (sc *gumScratch) phases() (countE, quotaE, repE uint32) {
	if sc.epoch > math.MaxUint32-3 {
		clear(sc.stamp)
		sc.epoch = 0
	}
	sc.epoch += 3
	return sc.epoch - 2, sc.epoch - 1, sc.epoch
}

// floatBytes reports the in-memory size of the arena element type.
func floatBytes[F kernels.Float]() int {
	var z F
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}

// denseTally fills cellOf with every snapshot row's flattened cell
// and tallies the counts into the arena at countE, leaving
// sc.touched holding every nonzero cell (unsorted, first-touch
// order). The stride accumulation and the count pass are fused into
// ONE row sweep through the kernels package — not len(Attrs)
// accumulation passes plus a count pass. When the arena's working
// set (vals + stamp over the marginal's cells) exceeds the L2
// budget, the fused pass is split: cellOf is computed in one
// streaming pass, then the tally scatters in ascending cell blocks
// that stay cache-resident. Blocked or not, the touched SET is
// identical and planUpdate orders cells before any ordered use, so
// the plan is byte-identical either way.
func denseTally[F kernels.Float](sc *gumScratch, vals []F, ds *dataset.Encoded, m *marginal.Marginal, cells int, countE uint32) {
	n := ds.NumRows()
	cellOf := sc.cellOf[:n]
	stamp := sc.stamp
	touched := sc.touched[:0]

	if footprint := cells * (floatBytes[F]() + 4); footprint > gumTileBytes && n >= cells {
		blockCells := gumTileBytes / (floatBytes[F]() + 4)
		if minBlock := (cells + gumTileMaxPasses - 1) / gumTileMaxPasses; blockCells < minBlock {
			blockCells = minBlock
		}
		m.CellsInto(ds, cellOf)
		for lo := 0; lo < cells; lo += blockCells {
			hi := lo + blockCells
			if hi > cells {
				hi = cells
			}
			touched = kernels.TallyRange(cellOf, vals, stamp, countE, lo, hi, touched)
		}
		sc.touched = touched
		return
	}

	attrs, strides := m.Attrs, m.Strides()
	switch len(attrs) {
	case 2:
		touched = kernels.Cells2Tally(cellOf, ds.Cols[attrs[0]], ds.Cols[attrs[1]],
			strides[0], vals, stamp, countE, touched)
	case 3:
		touched = kernels.Cells3Tally(cellOf, ds.Cols[attrs[0]], ds.Cols[attrs[1]],
			ds.Cols[attrs[2]], strides[0], strides[1], vals, stamp, countE, touched)
	default:
		m.CellsInto(ds, cellOf)
		touched = kernels.Tally(cellOf, vals, stamp, countE, touched)
	}
	sc.touched = touched
}

// sparseTally is denseTally's fallback for cell spaces too large to
// arena: counts live in a map, then the touched set is extracted so
// the caller can order it deterministically.
func (sc *gumScratch) sparseTally(ds *dataset.Encoded, m *marginal.Marginal) {
	n := ds.NumRows()
	cellOf := sc.cellOf[:n]
	m.CellsInto(ds, cellOf)
	if sc.counts == nil {
		sc.counts = make(map[int]float64, n)
		sc.quota = make(map[int]float64)
		sc.srep = make(map[int]int)
	} else {
		clear(sc.counts)
	}
	for _, c := range cellOf {
		sc.counts[c]++
	}
	touched := sc.touched[:0]
	for c := range sc.counts {
		touched = append(touched, c)
	}
	sc.touched = touched
}
