package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Staged synthesis engine.
//
// Pipeline.Synthesize is organized as a sequence of named stages —
// budget → preprocess → select → publish → postprocess → gum → decode
// — that communicate through a synthState. The stages themselves run
// in order (each consumes the previous stage's outputs), but the hot
// loops *inside* a stage fan out over this worker pool:
//
//   - select:  per-attribute-pair InDif scores (marginal.NewPairScores + fan-out)
//   - publish: per-set marginal Compute + Publish
//   - gum:     per-marginal update planning inside GUM.Run
//   - windowed: fully concurrent window pipelines (disjoint records,
//     so parallel composition makes this a privacy-free speedup)
//
// Determinism contract: every parallel task derives its randomness
// from taskSeed(cfg.Seed, stage tag, task index) — never from worker
// identity, shared RNG state, or completion order — and a task may
// write only to its own index slot of a result slice. Under this
// contract Workers=1 and Workers=N produce byte-identical output for
// the same seed; engine_test.go locks that in.
type engine struct {
	workers int
	busy    atomic.Int64  // summed per-task wall time (ns) across parallel loops
	active  *atomic.Int64 // optional shared occupancy counter (EngineMetrics.ActiveWorkers)
}

// EngineMetrics wires optional engine-level observability into a
// pipeline run. Both hooks are designed for the zero-alloc contract
// of the GUM hot path: ActiveWorkers costs one atomic add per task
// edge and StageDone fires once per pipeline stage, never inside a
// parallel loop. A nil EngineMetrics (or nil fields) disables the
// corresponding hook at zero cost.
type EngineMetrics struct {
	// ActiveWorkers, when non-nil, is incremented as a pool worker
	// picks up a task and decremented when the task returns, so its
	// instantaneous value is the number of busy workers across every
	// engine sharing the counter (a serving daemon passes one counter
	// to all jobs).
	ActiveWorkers *atomic.Int64
	// StageDone, when non-nil, is called once per completed pipeline
	// stage with the stage's wall/busy split — the live counterpart
	// of Report.Stages, letting a caller feed histograms without
	// waiting for the run to finish.
	StageDone func(stage string, wall, busy time.Duration)
}

// newEngine sizes a worker pool; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func newEngine(workers int) *engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &engine{workers: workers}
}

// parallelFor runs fn(i) for every i in [0, n) across the pool and
// returns when all tasks finish. Tasks are handed out dynamically, so
// fn must not depend on which worker runs it or in what order tasks
// complete; results belong in per-index slots.
func (e *engine) parallelFor(n int, fn func(i int)) {
	e.parallelForWorker(n, func(_, i int) { fn(i) })
}

// parallelForWorker is parallelFor with the running worker's pool
// slot handed to each task: fn(w, i) sees w < e.workers, and no two
// concurrent tasks share a w. Tasks may therefore keep per-worker
// scratch arenas indexed by w (GUM's planUpdate does) — but the
// determinism contract still holds: a task's OUTPUT must not depend
// on w, so scratch may carry reusable buffers, never values that
// leak into results.
func (e *engine) parallelForWorker(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if e.active != nil {
				e.active.Add(1)
			}
			start := time.Now()
			fn(0, i)
			e.busy.Add(int64(time.Since(start)))
			if e.active != nil {
				e.active.Add(-1)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if e.active != nil {
					e.active.Add(1)
				}
				start := time.Now()
				fn(worker, i)
				e.busy.Add(int64(time.Since(start)))
				if e.active != nil {
					e.active.Add(-1)
				}
			}
		}(k)
	}
	wg.Wait()
}

// parallelForWorkerChunked is parallelForWorker with tasks handed out
// in contiguous chunks of the given size: one atomic claim (and one
// busy-accounting window) covers chunk tasks instead of one. For huge
// task counts — a published-marginal store with thousands of
// marginals fanning out per round — this shards the loop across
// goroutines without paying per-task handout overhead, while dynamic
// chunk claiming still balances uneven task costs. chunk <= 1
// degrades to parallelForWorker. The determinism contract is
// unchanged: tasks still see only (worker slot, task index).
func (e *engine) parallelForWorkerChunked(n, chunk int, fn func(worker, i int)) {
	if chunk <= 1 || e.workers <= 1 || n <= chunk {
		e.parallelForWorker(n, fn)
		return
	}
	w := e.workers
	if blocks := (n + chunk - 1) / chunk; w > blocks {
		w = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := (int(next.Add(1)) - 1) * chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if e.active != nil {
					e.active.Add(1)
				}
				start := time.Now()
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
				e.busy.Add(int64(time.Since(start)))
				if e.active != nil {
					e.active.Add(-1)
				}
			}
		}(k)
	}
	wg.Wait()
}

// parallelForErr is parallelFor for fallible tasks. All tasks run to
// completion; the error reported is the lowest-index failure, so the
// outcome matches a sequential left-to-right loop.
func (e *engine) parallelForErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	e.parallelFor(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// busyTime returns the accumulated per-task busy time, used by the
// stage runner to split wall clock from worker-CPU effort.
func (e *engine) busyTime() time.Duration {
	return time.Duration(e.busy.Load())
}

// StageTiming splits one pipeline stage's cost into wall-clock time
// and summed worker-busy time; Busy/Wall approximates the effective
// parallelism achieved by the stage. A stage with no parallel section
// reports Busy == Wall (it ran single-threaded).
type StageTiming struct {
	Wall time.Duration
	Busy time.Duration
}

// taskSeed derives the RNG seed of parallel task idx within a named
// stage from the pipeline seed. The stage tag is hashed (FNV-1a,
// inlined so the per-task call allocates nothing — it sits on GUM's
// zero-alloc plan path) so different stages draw from unrelated
// streams even at equal indices, and a splitmix64 finalizer
// decorrelates consecutive indices. This is the only sanctioned seed
// derivation for parallel tasks (see the determinism contract above).
func taskSeed(base uint64, stage string, idx int) uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for i := 0; i < len(stage); i++ {
		h ^= uint64(stage[i])
		h *= fnvPrime64
	}
	x := base ^ h ^ (uint64(idx)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
