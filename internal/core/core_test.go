package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/netdpsyn/netdpsyn/internal/marginal"
)

func TestSelectMarginalsPicksCorrelated(t *testing.T) {
	// Three attributes of domain 10; pair (0,1) strongly dependent,
	// others not.
	ps := &marginal.PairScores{
		Pairs:  [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Scores: []float64{1000, 1, 1},
	}
	domains := []int{10, 10, 10}
	res := SelectMarginals(ps, domains, 1.0)
	if len(res.Selected) == 0 {
		t.Fatal("nothing selected")
	}
	first := res.Selected[0]
	if first[0] != 0 || first[1] != 1 {
		t.Errorf("first selected = %v, want [0 1]", first)
	}
	if res.TotalError <= 0 {
		t.Errorf("total error = %v", res.TotalError)
	}
}

func TestSelectMarginalsBudgetSensitivity(t *testing.T) {
	// With a huge budget, everything useful gets selected; with a
	// tiny budget, noise error dominates and selection shrinks.
	ps := &marginal.PairScores{
		Pairs:  [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Scores: []float64{500, 400, 300},
	}
	domains := []int{50, 50, 50}
	rich := SelectMarginals(ps, domains, 100)
	poor := SelectMarginalsAtBudget(ps, domains, 1e-6)
	if len(rich.Selected) < len(poor.Selected) {
		t.Errorf("rich budget selected %d < poor %d", len(rich.Selected), len(poor.Selected))
	}
}

// SelectMarginalsAtBudget is a test helper aliasing SelectMarginals.
func SelectMarginalsAtBudget(ps *marginal.PairScores, domains []int, rho float64) *SelectionResult {
	return SelectMarginals(ps, domains, rho)
}

func TestCombineMergesOverlapping(t *testing.T) {
	domains := []int{4, 4, 4, 100}
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}}
	out := Combine(sets, domains, 64, 3)
	// {0,1} and {1,2} merge into {0,1,2} (64 cells); {2,3} stays (400
	// cells > 64 when merged with anything).
	foundTriple := false
	for _, s := range out {
		if len(s) == 3 && s[0] == 0 && s[1] == 1 && s[2] == 2 {
			foundTriple = true
		}
	}
	if !foundTriple {
		t.Errorf("expected merged {0,1,2}, got %v", out)
	}
	for _, s := range out {
		c := 1.0
		for _, a := range s {
			c *= float64(domains[a])
		}
		if len(s) > 2 && c > 64 {
			t.Errorf("oversized merge: %v (%.0f cells)", s, c)
		}
	}
}

func TestCombineRespectsArity(t *testing.T) {
	domains := []int{2, 2, 2, 2}
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	out := Combine(sets, domains, 1e9, 3)
	for _, s := range out {
		if len(s) > 3 {
			t.Errorf("arity cap violated: %v", s)
		}
	}
}

func TestCombineDisjointUntouched(t *testing.T) {
	domains := []int{2, 2, 2, 2}
	sets := [][]int{{0, 1}, {2, 3}}
	out := Combine(sets, domains, 1e9, 3)
	if len(out) != 2 {
		t.Errorf("disjoint sets should not merge: %v", out)
	}
}

func TestSubsetUnionHelpers(t *testing.T) {
	if !subset([]int{1, 3}, []int{0, 1, 2, 3}) {
		t.Error("subset false negative")
	}
	if subset([]int{1, 4}, []int{0, 1, 2, 3}) {
		t.Error("subset false positive")
	}
	u := union([]int{0, 2}, []int{1, 2, 3})
	want := []int{0, 1, 2, 3}
	if len(u) != len(want) {
		t.Fatalf("union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("union = %v", u)
		}
	}
	if !overlap([]int{1, 5}, []int{5, 9}) || overlap([]int{1, 2}, []int{3, 4}) {
		t.Error("overlap wrong")
	}
}

func TestUnionProperty(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		sa := dedupSorted([]int{int(a[0] % 8), int(a[1] % 8), int(a[2] % 8), int(a[3] % 8)})
		sb := dedupSorted([]int{int(b[0] % 8), int(b[1] % 8), int(b[2] % 8), int(b[3] % 8)})
		u := union(sa, sb)
		// Sorted, deduplicated, contains both.
		for i := 1; i < len(u); i++ {
			if u[i] <= u[i-1] {
				return false
			}
		}
		return subset(sa, u) && subset(sb, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// buildTargets creates a simple 2-attribute target set with perfect
// correlation between attributes.
func buildTargets(n int) ([]*marginal.Marginal, []*marginal.Marginal, []int) {
	domains := []int{3, 3}
	joint := marginal.New([]int{0, 1}, domains)
	for v := 0; v < 3; v++ {
		joint.Counts[joint.Index(int32(v), int32(v))] = float64(n) / 3
	}
	one0 := marginal.New([]int{0}, []int{3})
	one1 := marginal.New([]int{1}, []int{3})
	for v := 0; v < 3; v++ {
		one0.Counts[v] = float64(n) / 3
		one1.Counts[v] = float64(n) / 3
	}
	return []*marginal.Marginal{joint}, []*marginal.Marginal{one0, one1}, domains
}

func TestGUMConvergesToTargets(t *testing.T) {
	n := 900
	published, oneWay, domains := buildTargets(n)
	init, err := InitIndependent([]string{"a", "b"}, domains, oneWay, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGUM(published, n, GUMConfig{Iterations: 30, InitAlpha: 1, AlphaDecay: 0.84, DuplicateProb: 0.5, Seed: 5})
	errs := g.Run(init)
	if len(errs) != 30 {
		t.Fatalf("errors = %d rounds", len(errs))
	}
	if errs[len(errs)-1] >= errs[0] {
		t.Errorf("GUM error did not decrease: %v → %v", errs[0], errs[len(errs)-1])
	}
	// Final joint should be near-diagonal.
	match := 0
	for r := 0; r < n; r++ {
		if init.Cols[0][r] == init.Cols[1][r] {
			match++
		}
	}
	if float64(match)/float64(n) < 0.9 {
		t.Errorf("diagonal fraction = %v, want > 0.9", float64(match)/float64(n))
	}
}

func TestInitGUMMISeedsKeyCorrelations(t *testing.T) {
	n := 900
	published, oneWay, domains := buildTargets(n)
	init, err := InitGUMMI([]string{"a", "b"}, domains, oneWay, published, 0, n, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// GUMMI should already place most rows on the diagonal before any
	// GUM round.
	match := 0
	for r := 0; r < n; r++ {
		if init.Cols[0][r] == init.Cols[1][r] {
			match++
		}
	}
	if float64(match)/float64(n) < 0.95 {
		t.Errorf("GUMMI diagonal fraction = %v", float64(match)/float64(n))
	}
}

func TestInitGUMMIFasterThanGUM(t *testing.T) {
	// The Figure 8 claim in miniature: after ONE update round, GUMMI
	// is closer to the targets than plain GUM.
	n := 600
	published, oneWay, domains := buildTargets(n)
	gummi, err := InitGUMMI([]string{"a", "b"}, domains, oneWay, published, 0, n, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := InitIndependent([]string{"a", "b"}, domains, oneWay, n, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GUMConfig{Iterations: 1, InitAlpha: 1, AlphaDecay: 0.84, DuplicateProb: 0.5, Seed: 9}
	e1 := NewGUM(published, n, cfg).Run(gummi)
	e2 := NewGUM(published, n, cfg).Run(plain)
	if e1[0] >= e2[0] {
		t.Errorf("GUMMI initial error %v should beat GUM %v", e1[0], e2[0])
	}
}

func TestInitIndependentMatchesOneWay(t *testing.T) {
	n := 3000
	oneWay := []*marginal.Marginal{marginal.New([]int{0}, []int{2})}
	oneWay[0].Counts[0] = 0.9 * float64(n)
	oneWay[0].Counts[1] = 0.1 * float64(n)
	init, err := InitIndependent([]string{"a"}, []int{2}, oneWay, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range init.Cols[0] {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(n)
	if math.Abs(frac-0.9) > 0.03 {
		t.Errorf("sampled fraction = %v, want ≈0.9", frac)
	}
}

func TestInitGUMMIBadKey(t *testing.T) {
	_, oneWay, domains := buildTargets(100)
	if _, err := InitGUMMI([]string{"a", "b"}, domains, oneWay, nil, 99, 100, 0, 1); err == nil {
		t.Error("out-of-range key must error")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	bad := []Config{
		{Epsilon: 0, Delta: 1e-5},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 2},
	}
	for _, cfg := range bad {
		if _, err := NewPipeline(cfg); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
	cfg := DefaultConfig()
	cfg.GUM.Iterations = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestConditionalSampler(t *testing.T) {
	m := marginal.New([]int{0, 1}, []int{2, 3})
	// key=0 → always b=2; key=1 → always b=0.
	m.Counts[m.Index(0, 2)] = 5
	m.Counts[m.Index(1, 0)] = 7
	cs, err := newConditionalSampler(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	init, _ := InitIndependent([]string{"x"}, []int{1}, []*marginal.Marginal{marginal.New([]int{0}, []int{1})}, 1, 1)
	_ = init
	rngSamples := func(k int32) []int32 {
		out := make([]int32, 0, 50)
		rng := rand.New(rand.NewPCG(3, 3^0x6a09e667f3bcc908))
		for i := 0; i < 50; i++ {
			cell := cs.Sample(rng, k)
			out = append(out, m.Cell(cell)[1])
		}
		return out
	}
	for _, b := range rngSamples(0) {
		if b != 2 {
			t.Fatalf("key 0 sampled b=%d, want 2", b)
		}
	}
	for _, b := range rngSamples(1) {
		if b != 0 {
			t.Fatalf("key 1 sampled b=%d, want 0", b)
		}
	}
}

func TestCellsOf(t *testing.T) {
	if c := cellsOf([]int{2, 3, 4}, []int{0, 2}); c != 8 {
		t.Errorf("cellsOf = %v, want 8", c)
	}
}
