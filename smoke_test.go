package netdpsyn_test

import (
	"testing"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

// TestEndToEndSmoke runs the full pipeline on a small TON-like trace
// and checks the basic contract: same schema, non-empty output, and
// valid field ranges.
func TestEndToEndSmoke(t *testing.T) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 3000, Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	syn, err := netdpsyn.New(netdpsyn.Config{Epsilon: 2.0, Delta: 1e-5, UpdateIterations: 10, Seed: 7})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := syn.Synthesize(raw)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("no synthesized rows")
	}
	if got, want := res.Table.Schema().NumFields(), raw.Schema().NumFields(); got != want {
		t.Fatalf("schema width = %d, want %d", got, want)
	}
	// Port validity (§3.4: decoded ports must stay below 65536).
	for _, name := range []string{"srcport", "dstport"} {
		col := res.Table.ColumnByName(name)
		for i, v := range col {
			if v < 0 || v > 65535 {
				t.Fatalf("%s[%d] = %d out of range", name, i, v)
			}
		}
	}
	// byt >= pkt constraint.
	byt, pkt := res.Table.ColumnByName("byt"), res.Table.ColumnByName("pkt")
	for i := range byt {
		if byt[i] < pkt[i] {
			t.Fatalf("row %d: byt %d < pkt %d", i, byt[i], pkt[i])
		}
	}
	t.Logf("synthesized %d records, %d marginal sets", res.Records, len(res.SelectedMarginals))
}
