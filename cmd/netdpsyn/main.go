// Command netdpsyn synthesizes a network trace under differential
// privacy: it reads a CSV trace (flow or packet headers), runs the
// NetDPSyn pipeline, and writes a privacy-protected synthetic CSV
// with the same schema.
//
// Usage:
//
//	netdpsyn -in flows.csv -out synthetic.csv -schema flow -label label -eps 2.0
//
// The input must contain the canonical header fields (srcip, dstip,
// srcport, dstport, proto, ts, ... — see -schema).
package main

import (
	"flag"
	"fmt"
	"os"

	netdpsyn "github.com/netdpsyn/netdpsyn"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV trace (required)")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
		schema  = flag.String("schema", "flow", "trace schema: flow or packet")
		label   = flag.String("label", "label", "label field name for flow schemas (e.g. type for TON)")
		eps     = flag.Float64("eps", 2.0, "privacy budget ε")
		delta   = flag.Float64("delta", 1e-5, "privacy parameter δ")
		iters   = flag.Int("iters", 200, "GUM update iterations (lower = faster, Figure 8)")
		seed    = flag.Uint64("seed", 1, "random seed (deterministic output)")
		nOut    = flag.Int("records", 0, "synthetic record count (0 = derive from noisy totals)")
		workers = flag.Int("workers", 0, "synthesis worker pool size (0 = all cores; output is identical for any value)")
	)
	flag.Parse()
	if err := run(*in, *out, *schema, *label, *eps, *delta, *iters, *seed, *nOut, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "netdpsyn:", err)
		os.Exit(1)
	}
}

func run(in, out, schemaName, label string, eps, delta float64, iters int, seed uint64, nOut, workers int) error {
	if in == "" {
		return fmt.Errorf("missing -in (input CSV)")
	}
	var schema *netdpsyn.Schema
	switch schemaName {
	case "flow":
		schema = netdpsyn.FlowSchema(label)
	case "packet":
		schema = netdpsyn.PacketSchema()
	default:
		return fmt.Errorf("unknown -schema %q (want flow or packet)", schemaName)
	}

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	table, err := netdpsyn.LoadCSV(f, schema)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d records, %d attributes\n", table.NumRows(), table.NumCols())

	syn, err := netdpsyn.New(netdpsyn.Config{
		Epsilon:          eps,
		Delta:            delta,
		UpdateIterations: iters,
		SynthRecords:     nOut,
		Seed:             seed,
		Workers:          workers,
	})
	if err != nil {
		return err
	}
	res, err := syn.Synthesize(table)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d records under (ε=%g, δ=%g)-DP; %d marginal sets\n",
		res.Records, res.Epsilon, res.Delta, len(res.SelectedMarginals))
	for _, set := range res.SelectedMarginals {
		fmt.Fprintf(os.Stderr, "  marginal: %v\n", set)
	}

	w := os.Stdout
	if out != "" {
		wf, err := os.Create(out)
		if err != nil {
			return err
		}
		defer wf.Close()
		w = wf
	}
	return res.Table.WriteCSV(w)
}
