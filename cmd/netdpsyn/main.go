// Command netdpsyn synthesizes a network trace under differential
// privacy: it reads a CSV trace (flow or packet headers), runs the
// NetDPSyn pipeline, and writes a privacy-protected synthetic CSV
// with the same schema.
//
// Usage:
//
//	netdpsyn -in flows.csv -out synthetic.csv -schema flow -label label -eps 2.0
//
// The input must contain the canonical header fields (srcip, dstip,
// srcport, dstport, proto, ts, ... — see -schema).
//
// Scaling modes partition the trace into disjoint time windows, each
// synthesized under the full (ε, δ) budget and written to the output
// as it completes:
//
//	netdpsyn -in flows.csv -span 3600        # fixed 1h time buckets (ts in seconds)
//	netdpsyn -in flows.csv -windows 8        # row-count quantile windows
//	netdpsyn -in huge.csv -stream -span 3600
//	netdpsyn -in huge.csv -stream -window-rows 100000
//
// The modes carry different guarantees. -span cuts fixed time ranges:
// a record's window is ⌊ts/span⌋, a function of that record alone, so
// the windows compose in parallel and the whole output is (ε, δ)-DP
// at record level. -windows and -window-rows cut at row ranks, which
// are data-dependent: each window is (ε, δ)-DP in isolation, but a
// record-level guarantee for the whole output composes sequentially
// across windows.
//
// -stream never materializes the trace: the input is decoded in
// batches and cut into windows on the fly, so memory stays bounded at
// any trace length. It requires the input to be sorted by the ts
// field.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	netdpsyn "github.com/netdpsyn/netdpsyn"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV trace (required)")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
		schema  = flag.String("schema", "flow", "trace schema: flow or packet")
		label   = flag.String("label", "label", "label field name for flow schemas (e.g. type for TON)")
		eps     = flag.Float64("eps", 2.0, "privacy budget ε")
		delta   = flag.Float64("delta", 1e-5, "privacy parameter δ")
		iters   = flag.Int("iters", 200, "GUM update iterations (lower = faster, Figure 8)")
		seed    = flag.Uint64("seed", 1, "random seed (deterministic output)")
		nOut    = flag.Int("records", 0, "synthetic record count per synthesis (0 = derive from noisy totals)")
		workers = flag.Int("workers", 0, "synthesis worker pool size (0 = all cores; output is identical for any value)")
		windows = flag.Int("windows", 0, "split the trace into this many row-count quantile windows, each (ε, δ)-DP in isolation (whole-output guarantee composes sequentially)")
		span    = flag.Int64("span", 0, "split the trace into fixed time windows of this many ts units; record-level (ε, δ) for the whole output by parallel composition")
		stream  = flag.Bool("stream", false, "stream the input window-by-window without materializing it (bounded memory; input must be sorted by ts)")
		winRows = flag.Int("window-rows", 100000, "records per window in -stream mode when -span is not set")
		maxRows = flag.Int("max-window-rows", 1_000_000, "in -stream -span mode, fail if one time bucket holds more records than this (0 = unbounded) — the bound that keeps -stream's memory bounded when the span is too coarse")
	)
	flag.Parse()
	if err := run(options{
		in: *in, out: *out, schema: *schema, label: *label,
		eps: *eps, delta: *delta, iters: *iters, seed: *seed,
		records: *nOut, workers: *workers,
		windows: *windows, span: *span, stream: *stream,
		windowRows: *winRows, maxWindowRows: *maxRows,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "netdpsyn:", err)
		os.Exit(1)
	}
}

type options struct {
	in, out, schema, label string
	eps, delta             float64
	iters                  int
	seed                   uint64
	records, workers       int
	windows                int
	span                   int64
	stream                 bool
	windowRows             int
	maxWindowRows          int
}

func run(o options) error {
	if o.in == "" {
		return fmt.Errorf("missing -in (input CSV)")
	}
	if o.span < 0 {
		return fmt.Errorf("-span must be non-negative, got %d", o.span)
	}
	if o.windows > 0 && o.span > 0 {
		return fmt.Errorf("set at most one of -windows and -span")
	}
	if o.stream && o.windows > 0 {
		return fmt.Errorf("-stream cuts windows by -span or -window-rows (the stream length is unknown up front); drop -windows")
	}
	if o.stream && o.span == 0 && o.windowRows <= 0 {
		return fmt.Errorf("-window-rows must be positive in -stream mode, got %d", o.windowRows)
	}
	if o.maxWindowRows < 0 {
		return fmt.Errorf("-max-window-rows must be non-negative, got %d", o.maxWindowRows)
	}
	var schema *netdpsyn.Schema
	switch o.schema {
	case "flow":
		schema = netdpsyn.FlowSchema(o.label)
	case "packet":
		schema = netdpsyn.PacketSchema()
	default:
		return fmt.Errorf("unknown -schema %q (want flow or packet)", o.schema)
	}

	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()

	w := io.Writer(os.Stdout)
	if o.out != "" {
		wf, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer wf.Close()
		w = wf
	}

	syn, err := netdpsyn.New(netdpsyn.Config{
		Epsilon:          o.eps,
		Delta:            o.delta,
		UpdateIterations: o.iters,
		SynthRecords:     o.records,
		Seed:             o.seed,
		Workers:          o.workers,
	})
	if err != nil {
		return err
	}

	if o.stream {
		return runStream(syn, f, schema, w, o)
	}

	table, err := netdpsyn.LoadCSV(f, schema)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d records, %d attributes\n", table.NumRows(), table.NumCols())

	if o.span > 0 {
		total, windows, err := emitWindowed(w, func(emit func(netdpsyn.WindowResult) error) error {
			return syn.SynthesizeTimeWindows(table, o.span, emit)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "synthesized %d records across %d fixed time windows: record-level (ε=%g, δ=%g)-DP overall (parallel composition)\n",
			total, windows, o.eps, o.delta)
		return nil
	}

	if o.windows > 1 {
		total, windows, err := emitWindowed(w, func(emit func(netdpsyn.WindowResult) error) error {
			return syn.SynthesizeWindows(table, o.windows, emit)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "synthesized %d records across %d quantile windows under (ε=%g, δ=%g)-DP per window (boundaries are data-dependent: the whole-output guarantee composes sequentially; use -span for parallel composition)\n",
			total, windows, o.eps, o.delta)
		return nil
	}

	res, err := syn.Synthesize(table)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d records under (ε=%g, δ=%g)-DP; %d marginal sets\n",
		res.Records, res.Epsilon, res.Delta, len(res.SelectedMarginals))
	for _, set := range res.SelectedMarginals {
		fmt.Fprintf(os.Stderr, "  marginal: %v\n", set)
	}
	return res.Table.WriteCSV(w)
}

// runStream drives the bounded-memory path: windows are cut from the
// CSV stream as it decodes and written out as they are synthesized,
// so neither the input nor the output trace ever exists in memory.
func runStream(syn *netdpsyn.Synthesizer, r io.Reader, schema *netdpsyn.Schema, w io.Writer, o options) error {
	opts := netdpsyn.StreamOptions{WindowRows: o.windowRows}
	if o.span > 0 {
		// The row cap is what keeps -stream's memory bounded when the
		// span is too coarse for the trace's density.
		opts = netdpsyn.StreamOptions{WindowSpan: o.span, MaxWindowRows: o.maxWindowRows}
	}
	total, windows, err := emitWindowed(w, func(emit func(netdpsyn.WindowResult) error) error {
		return syn.SynthesizeStream(r, schema, opts, emit)
	})
	if err != nil {
		return err
	}
	if o.span > 0 {
		fmt.Fprintf(os.Stderr, "streamed %d records across %d fixed time windows: record-level (ε=%g, δ=%g)-DP overall (parallel composition)\n",
			total, windows, o.eps, o.delta)
	} else {
		fmt.Fprintf(os.Stderr, "streamed %d records across %d windows under (ε=%g, δ=%g)-DP per window (row-cut boundaries are data-dependent: the whole-output guarantee composes sequentially; use -span for parallel composition)\n",
			total, windows, o.eps, o.delta)
	}
	return nil
}

// emitWindowed drives one windowed synthesis run into the shared CSV
// appender, reporting per-window progress on stderr and returning the
// totals for the caller's summary line.
func emitWindowed(w io.Writer, synth func(emit func(netdpsyn.WindowResult) error) error) (records, windows int, err error) {
	app := csvAppender{w: w}
	err = synth(func(wr netdpsyn.WindowResult) error {
		records += wr.Records
		windows++
		fmt.Fprintf(os.Stderr, "window %d: %d records\n", wr.Window+1, wr.Records)
		return app.add(wr.Table)
	})
	return records, windows, err
}

// csvAppender concatenates per-window CSVs, keeping exactly one
// header row across the whole file (keyed on the first emission, not
// window index 0, which can be empty and skipped).
type csvAppender struct {
	w       io.Writer
	started bool
}

func (a *csvAppender) add(t *netdpsyn.Table) error {
	if !a.started {
		a.started = true
		return t.WriteCSV(a.w)
	}
	return t.WriteCSVBody(a.w)
}
