package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

func writeTrace(t *testing.T, dir string, sorted bool) string {
	t.Helper()
	tab, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sorted {
		tab = tab.SortBy(tab.Schema().Index(trace.FieldTS))
	}
	path := filepath.Join(dir, "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tab.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseOptions(in, out string) options {
	return options{
		in: in, out: out, schema: "flow", label: "label",
		eps: 2.0, delta: 1e-5, iters: 5, seed: 1, workers: 2,
		windowRows: 100000,
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSpace(string(data)), "\n")
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir, false)
	out := filepath.Join(dir, "out.csv")
	if err := run(baseOptions(in, out)); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, out)
	if len(lines) < 100 {
		t.Fatalf("output too small: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "srcip,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestRunWindowed(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir, false)
	out := filepath.Join(dir, "windowed.csv")
	o := baseOptions(in, out)
	o.windows = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, out)
	if len(lines) < 100 {
		t.Fatalf("output too small: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "srcip,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for i, l := range lines[1:] {
		if strings.HasPrefix(l, "srcip,") {
			t.Fatalf("stray header at line %d", i+2)
		}
	}
}

func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir, true) // streaming needs time-ordered input
	out := filepath.Join(dir, "streamed.csv")
	o := baseOptions(in, out)
	o.stream = true
	o.windowRows = 150 // 400 rows → 3 windows
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, out)
	if len(lines) < 100 {
		t.Fatalf("output too small: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "srcip,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for i, l := range lines[1:] {
		if strings.HasPrefix(l, "srcip,") {
			t.Fatalf("stray header at line %d", i+2)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(baseOptions("", "")); err == nil {
		t.Error("missing input must error")
	}
	o := baseOptions("nope.csv", "")
	o.schema = "bogus"
	if err := run(o); err == nil {
		t.Error("bad schema must error")
	}
	if err := run(baseOptions("definitely-missing.csv", "")); err == nil {
		t.Error("missing file must error")
	}
	o = baseOptions("in.csv", "")
	o.stream = true
	o.windows = 2
	if err := run(o); err == nil {
		t.Error("-stream with -windows must error")
	}
	o = baseOptions("in.csv", "")
	o.stream = true
	o.windowRows = 0
	if err := run(o); err == nil {
		t.Error("-stream with zero -window-rows must error")
	}
}
