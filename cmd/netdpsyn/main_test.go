package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	tab, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tab.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	out := filepath.Join(dir, "out.csv")
	if err := run(in, out, "flow", "label", 2.0, 1e-5, 5, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("output too small: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "srcip,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "flow", "label", 2, 1e-5, 5, 1, 0, 0); err == nil {
		t.Error("missing input must error")
	}
	if err := run("nope.csv", "", "bogus", "label", 2, 1e-5, 5, 1, 0, 0); err == nil {
		t.Error("bad schema must error")
	}
	if err := run("definitely-missing.csv", "", "flow", "label", 2, 1e-5, 5, 1, 0, 0); err == nil {
		t.Error("missing file must error")
	}
}
