package main

// The quality trajectory: with -quality, benchtraj compares two
// BENCH_quality.json emissions instead of stage timings. CI runs
// BenchmarkEvaluationQuality with BENCH_QUALITY_JSON set and gates
// the scores against the committed baseline:
//
//	BENCH_QUALITY_JSON=$PWD/BENCH_quality.json \
//	    go test -run xxx -bench BenchmarkEvaluationQuality -benchtime 1x .
//	go run ./cmd/benchtraj -quality \
//	    -baseline bench/BENCH_quality.baseline.json -current BENCH_quality.json
//
// Unlike wall time, the scores are deterministic at pinned seeds, so
// the tolerances are absolute score deltas, not noise margins: a
// crossing means an algorithm change moved fidelity or privacy, and
// the ::warning tells a human to either fix it or re-commit the
// baseline deliberately.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// qualityFile mirrors bench_test.go's qualityFile (unknown fields are
// ignored, so the two shapes may grow independently).
type qualityFile struct {
	Benchmark    string             `json:"benchmark"`
	Go           string             `json:"go"`
	Rows         int                `json:"rows"`
	Seed         uint64             `json:"seed"`
	TVDMean      float64            `json:"tvd_mean"`
	MLAccuracy   map[string]float64 `json:"ml_accuracy"`
	RealAccuracy map[string]float64 `json:"real_accuracy"`
	MIAAdvantage map[string]float64 `json:"mia_advantage"`
}

func loadQuality(path string) (*qualityFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f qualityFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(f.MLAccuracy) == 0 && len(f.MIAAdvantage) == 0 && f.TVDMean == 0 {
		return nil, fmt.Errorf("%s has no quality scores", path)
	}
	return &f, nil
}

// qualityTols are the absolute score deltas that trigger a warning:
// TVD is a rise ceiling (higher = worse fidelity), Acc a drop floor
// (lower = worse utility), MIA a rise ceiling (higher = worse
// privacy).
type qualityTols struct {
	TVD float64
	Acc float64
	MIA float64
}

// compareQuality renders the fidelity/privacy trajectory and returns
// the scores that crossed their tolerance in the bad direction.
// Improvements never flag; new and vanished models report but never
// count as regressions. The real_accuracy rows are informational —
// they score the train-on-raw baseline classifier, not the release.
func compareQuality(baseline, current *qualityFile, tol qualityTols) (table string, regressions []string) {
	table = fmt.Sprintf("%-24s %10s %10s %9s\n", "score", "base", "cur", "Δ")
	row := func(name string, b, c float64, bad bool, detail string) {
		mark := ""
		if bad {
			mark = "  ← REGRESSION"
			regressions = append(regressions, detail)
		}
		table += fmt.Sprintf("%-24s %10.4f %10.4f %+9.4f%s\n", name, b, c, c-b, mark)
	}
	row("tvd_mean", baseline.TVDMean, current.TVDMean,
		current.TVDMean > baseline.TVDMean+tol.TVD,
		fmt.Sprintf("mean marginal TVD rose %.4f → %.4f (tolerance +%g)",
			baseline.TVDMean, current.TVDMean, tol.TVD))

	modelRows := func(kind string, base, cur map[string]float64,
		bad func(b, c float64) bool, detail func(model string, b, c float64) string) {
		names := make(map[string]bool)
		for n := range base {
			names[n] = true
		}
		for n := range cur {
			names[n] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			b, inBase := base[n]
			c, inCur := cur[n]
			label := kind + "[" + n + "]"
			switch {
			case !inBase:
				table += fmt.Sprintf("%-24s %10s %10.4f %9s\n", label, "—", c, "new")
			case !inCur:
				table += fmt.Sprintf("%-24s %10.4f %10s %9s\n", label, b, "—", "gone")
			default:
				row(label, b, c, bad(b, c), detail(n, b, c))
			}
		}
	}
	never := func(b, c float64) bool { return false }
	modelRows("ml_accuracy", baseline.MLAccuracy, current.MLAccuracy,
		func(b, c float64) bool { return c < b-tol.Acc },
		func(m string, b, c float64) string {
			return fmt.Sprintf("model %s synth-trained accuracy fell %.4f → %.4f (tolerance -%g)", m, b, c, tol.Acc)
		})
	modelRows("real_accuracy", baseline.RealAccuracy, current.RealAccuracy,
		never, func(m string, b, c float64) string { return "" })
	modelRows("mia_advantage", baseline.MIAAdvantage, current.MIAAdvantage,
		func(b, c float64) bool { return c > b+tol.MIA },
		func(m string, b, c float64) string {
			return fmt.Sprintf("model %s MIA advantage rose %.4f → %.4f (tolerance +%g)", m, b, c, tol.MIA)
		})
	return table, regressions
}

// runQuality is the -quality main: same exit-code conventions as the
// stage-timings mode (2 on load error, 0 with ::warning annotations on
// regression, 1 only under -hard).
func runQuality(baselinePath, currentPath string, tol qualityTols, hard bool) {
	baseline, err := loadQuality(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(2)
	}
	current, err := loadQuality(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(2)
	}
	fmt.Printf("quality trajectory: %s (baseline %s seed=%d vs current %s seed=%d)\n",
		current.Benchmark, baseline.Go, baseline.Seed, current.Go, current.Seed)
	table, regressions := compareQuality(baseline, current, tol)
	fmt.Print(table)
	for _, r := range regressions {
		fmt.Printf("::warning title=quality trajectory::%s\n", r)
	}
	if len(regressions) == 0 {
		fmt.Printf("no score crossed its tolerance (tvd +%g, accuracy -%g, mia advantage +%g)\n",
			tol.TVD, tol.Acc, tol.MIA)
	} else if hard {
		os.Exit(1)
	}
}
