package main

import (
	"strings"
	"testing"
)

func stages(m map[string]float64) map[string]stageEntry {
	out := make(map[string]stageEntry, len(m))
	for n, wall := range m {
		out[n] = stageEntry{WallMS: wall, BusyMS: wall}
	}
	return out
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &stageFile{Stages: stages(map[string]float64{"gum": 100, "decode": 10, "select": 5})}
	cur := &stageFile{Stages: stages(map[string]float64{"gum": 120, "decode": 10.5, "select": 5})}

	table, regs := compare(base, cur, 15)
	if len(regs) != 2 { // gum +20%, and the total (115 → 135.5 = +17.8%)
		t.Fatalf("regressions = %v, want gum + total", regs)
	}
	if !strings.Contains(regs[0], "gum") || !strings.Contains(regs[1], "total") {
		t.Fatalf("regressions = %v", regs)
	}
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "TOTAL") {
		t.Fatalf("table missing markers:\n%s", table)
	}
}

func TestCompareWithinThresholdIsQuiet(t *testing.T) {
	base := &stageFile{Stages: stages(map[string]float64{"gum": 100, "decode": 10})}
	cur := &stageFile{Stages: stages(map[string]float64{"gum": 110, "decode": 9})} // +10%, -10%
	if _, regs := compare(base, cur, 15); len(regs) != 0 {
		t.Fatalf("within-threshold run flagged: %v", regs)
	}
	// Improvements are never regressions, however large.
	cur = &stageFile{Stages: stages(map[string]float64{"gum": 10, "decode": 1})}
	if _, regs := compare(base, cur, 15); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareNewAndVanishedStages(t *testing.T) {
	base := &stageFile{Stages: stages(map[string]float64{"gum": 100, "legacy": 50})}
	cur := &stageFile{Stages: stages(map[string]float64{"gum": 100, "shiny": 500})}
	table, regs := compare(base, cur, 15)
	if len(regs) != 0 {
		t.Fatalf("new/vanished stages must not count as regressions: %v", regs)
	}
	if !strings.Contains(table, "new") || !strings.Contains(table, "gone") {
		t.Fatalf("table should mark new/gone stages:\n%s", table)
	}
}

func TestCompareZeroBaselineStage(t *testing.T) {
	// A 0 ms baseline stage (sub-microsecond) must not divide by zero
	// or flag on any current value.
	base := &stageFile{Stages: stages(map[string]float64{"budget": 0, "gum": 100})}
	cur := &stageFile{Stages: stages(map[string]float64{"budget": 0.4, "gum": 100})}
	if _, regs := compare(base, cur, 15); len(regs) != 0 {
		t.Fatalf("zero-baseline stage flagged: %v", regs)
	}
}

func TestKernelMismatch(t *testing.T) {
	opt := &kernelEntry{Variant: "optimized", GOARCH: "amd64", GOAMD64: "v1"}
	same := *opt
	cases := []struct {
		name    string
		base    *kernelEntry
		cur     *kernelEntry
		mustSay string
	}{
		{"both nil", nil, nil, ""},
		{"baseline predates metadata", nil, opt, ""},
		{"current predates metadata", opt, nil, ""},
		{"identical", opt, &same, ""},
		{"variant differs", opt, &kernelEntry{Variant: "purego", GOARCH: "amd64", GOAMD64: "v1"}, "variant"},
		{"cells32 differs", opt, &kernelEntry{Variant: "optimized", Cells32: true, GOARCH: "amd64", GOAMD64: "v1"}, "cells32"},
		{"goarch differs", opt, &kernelEntry{Variant: "optimized", GOARCH: "arm64"}, "GOARCH"},
		{"goamd64 differs", opt, &kernelEntry{Variant: "optimized", GOARCH: "amd64", GOAMD64: "v3"}, "GOAMD64"},
	}
	for _, tc := range cases {
		got := kernelMismatch(&stageFile{Kernel: tc.base}, &stageFile{Kernel: tc.cur})
		if tc.mustSay == "" && got != "" {
			t.Errorf("%s: kernelMismatch = %q, want comparable", tc.name, got)
		}
		if tc.mustSay != "" && !strings.Contains(got, tc.mustSay) {
			t.Errorf("%s: kernelMismatch = %q, want mention of %q", tc.name, got, tc.mustSay)
		}
	}
}

func mems(m map[string]float64) map[string]memEntry {
	out := make(map[string]memEntry, len(m))
	for n, allocs := range m {
		out[n] = memEntry{AllocsPerOp: allocs, BytesPerOp: allocs * 100}
	}
	return out
}

func TestCompareMemFlagsRegressions(t *testing.T) {
	base := &stageFile{Mem: mems(map[string]float64{"BenchmarkStageTimings": 1000, "BenchmarkFollowIngest": 500})}
	cur := &stageFile{Mem: mems(map[string]float64{"BenchmarkStageTimings": 1400, "BenchmarkFollowIngest": 550})}
	table, regs := compareMem(base, cur, 25)
	if len(regs) != 1 { // StageTimings +40%; FollowIngest +10% stays quiet
		t.Fatalf("mem regressions = %v, want 1", regs)
	}
	if !strings.Contains(regs[0], "BenchmarkStageTimings") || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("mem regression = %v", regs)
	}
	if !strings.Contains(table, "REGRESSION") {
		t.Fatalf("mem table missing marker:\n%s", table)
	}
}

func TestCompareMemMissingBaseline(t *testing.T) {
	// A pre-allocs baseline (no mem section) must stay quiet whatever
	// the current run allocates, and an entirely mem-less pair renders
	// no table at all.
	base := &stageFile{}
	cur := &stageFile{Mem: mems(map[string]float64{"BenchmarkStageTimings": 99999})}
	table, regs := compareMem(base, cur, 25)
	if len(regs) != 0 {
		t.Fatalf("missing-baseline mem flagged: %v", regs)
	}
	if !strings.Contains(table, "new") {
		t.Fatalf("mem table should mark new benchmarks:\n%s", table)
	}
	if table, regs := compareMem(&stageFile{}, &stageFile{}, 25); table != "" || len(regs) != 0 {
		t.Fatalf("mem-less pair should render nothing, got %q %v", table, regs)
	}
}

func TestCompareMemZeroBaseline(t *testing.T) {
	// A zero-alloc baseline benchmark must not divide by zero or flag.
	base := &stageFile{Mem: mems(map[string]float64{"BenchmarkGUMSteadyState": 0})}
	cur := &stageFile{Mem: mems(map[string]float64{"BenchmarkGUMSteadyState": 1})}
	if _, regs := compareMem(base, cur, 25); len(regs) != 0 {
		t.Fatalf("zero-baseline mem flagged: %v", regs)
	}
}

func TestCompareQualityFlagsRegressions(t *testing.T) {
	base := &qualityFile{
		TVDMean:      0.70,
		MLAccuracy:   map[string]float64{"DT": 0.40, "LR": 0.40},
		RealAccuracy: map[string]float64{"DT": 0.80},
		MIAAdvantage: map[string]float64{"DT": 0.00, "LR": 0.05},
	}
	cur := &qualityFile{
		TVDMean:      0.75,                                       // +0.05 > +0.02
		MLAccuracy:   map[string]float64{"DT": 0.30, "LR": 0.39}, // DT -0.10 > 0.05; LR quiet
		RealAccuracy: map[string]float64{"DT": 0.10},             // informational, never flags
		MIAAdvantage: map[string]float64{"DT": 0.20, "LR": 0.06}, // DT +0.20 > 0.05; LR quiet
	}
	table, regs := compareQuality(base, cur, qualityTols{TVD: 0.02, Acc: 0.05, MIA: 0.05})
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want tvd + DT accuracy + DT advantage", regs)
	}
	if !strings.Contains(regs[0], "TVD") || !strings.Contains(regs[1], "accuracy") || !strings.Contains(regs[2], "advantage") {
		t.Fatalf("regressions = %v", regs)
	}
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "real_accuracy[DT]") {
		t.Fatalf("table missing markers:\n%s", table)
	}
}

func TestCompareQualityImprovementsAreQuiet(t *testing.T) {
	base := &qualityFile{
		TVDMean:      0.70,
		MLAccuracy:   map[string]float64{"DT": 0.40},
		MIAAdvantage: map[string]float64{"DT": 0.10},
	}
	// Fidelity, utility, and privacy all improve by a lot: no flags.
	cur := &qualityFile{
		TVDMean:      0.20,
		MLAccuracy:   map[string]float64{"DT": 0.90},
		MIAAdvantage: map[string]float64{"DT": -0.20},
	}
	if _, regs := compareQuality(base, cur, qualityTols{TVD: 0.02, Acc: 0.05, MIA: 0.05}); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareQualityNewAndVanishedModels(t *testing.T) {
	base := &qualityFile{
		TVDMean:      0.70,
		MLAccuracy:   map[string]float64{"DT": 0.40, "legacy": 0.99},
		MIAAdvantage: map[string]float64{"DT": 0.00},
	}
	cur := &qualityFile{
		TVDMean:      0.70,
		MLAccuracy:   map[string]float64{"DT": 0.40, "shiny": 0.01},
		MIAAdvantage: map[string]float64{"DT": 0.00},
	}
	table, regs := compareQuality(base, cur, qualityTols{TVD: 0.02, Acc: 0.05, MIA: 0.05})
	if len(regs) != 0 {
		t.Fatalf("new/vanished models must not count as regressions: %v", regs)
	}
	if !strings.Contains(table, "new") || !strings.Contains(table, "gone") {
		t.Fatalf("table should mark new/gone models:\n%s", table)
	}
}
