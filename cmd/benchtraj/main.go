// Command benchtraj compares two BENCH_stage_timings.json emissions —
// the bench trajectory. CI runs BenchmarkStageTimings with
// BENCH_STAGE_JSON set, uploads the result as an artifact on every
// push, and runs benchtraj against the committed baseline:
//
//	BENCH_STAGE_JSON=$PWD/BENCH_stage_timings.json \
//	    go test -run xxx -bench BenchmarkStageTimings -benchtime 5x .
//	go run ./cmd/benchtraj \
//	    -baseline bench/BENCH_stage_timings.baseline.json \
//	    -current  BENCH_stage_timings.json -warn-pct 15
//
// A stage whose wall time regresses by more than -warn-pct prints a
// GitHub Actions ::warning annotation but exits 0 — bench numbers on
// shared runners are noisy, so the trajectory warns humans instead of
// gating merges. Pass -hard to exit 1 on regression instead (for
// dedicated bench hardware).
//
// With -quality the comparison is BENCH_quality.json instead — the
// deterministic-seed fidelity/privacy scores of
// BenchmarkEvaluationQuality, gated by absolute tolerances (-tvd-tol,
// -acc-tol, -mia-tol); see quality.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// stageEntry mirrors bench_test.go's stageTimingsEntry.
type stageEntry struct {
	WallMS float64 `json:"wall_ms"`
	BusyMS float64 `json:"busy_ms"`
}

// memEntry mirrors bench_test.go's memPerOp.
type memEntry struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// kernelEntry mirrors bench_test.go's kernelMeta.
type kernelEntry struct {
	Variant string `json:"variant"`
	Cells32 bool   `json:"cells32"`
	GOARCH  string `json:"goarch"`
	GOAMD64 string `json:"goamd64"`
}

// stageFile mirrors bench_test.go's stageTimingsFile (unknown fields
// are ignored, so the two shapes may grow independently).
type stageFile struct {
	Benchmark string                `json:"benchmark"`
	Go        string                `json:"go"`
	Kernel    *kernelEntry          `json:"kernel"`
	N         int                   `json:"n"`
	NsPerOp   float64               `json:"ns_per_op"`
	Stages    map[string]stageEntry `json:"stages"`
	Mem       map[string]memEntry   `json:"mem"`
}

// kernelMismatch reports why the two emissions are not comparable, or
// "" when they are. Emissions measured on different compute substrates
// (purego vs optimized kernels, float32 vs float64 dense cells, a
// different architecture or instruction-set baseline) differ by
// construction — comparing them reads as a huge regression or a
// phantom win, so benchtraj refuses instead. A baseline that predates
// the metadata (nil Kernel) compares with a note: old baselines stay
// usable until regenerated.
func kernelMismatch(baseline, current *stageFile) string {
	b, c := baseline.Kernel, current.Kernel
	if b == nil || c == nil {
		return ""
	}
	switch {
	case b.Variant != c.Variant:
		return fmt.Sprintf("kernel variant %q vs %q", b.Variant, c.Variant)
	case b.Cells32 != c.Cells32:
		return fmt.Sprintf("cells32 %v vs %v", b.Cells32, c.Cells32)
	case b.GOARCH != c.GOARCH:
		return fmt.Sprintf("GOARCH %q vs %q", b.GOARCH, c.GOARCH)
	case b.GOAMD64 != c.GOAMD64:
		return fmt.Sprintf("GOAMD64 %q vs %q", b.GOAMD64, c.GOAMD64)
	}
	return ""
}

func load(path string) (*stageFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f stageFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(f.Stages) == 0 {
		return nil, fmt.Errorf("%s has no stages", path)
	}
	return &f, nil
}

// compare renders a per-stage trajectory table and returns the stages
// whose wall time regressed by more than warnPct percent. New stages
// (absent from the baseline) and vanished stages are reported but
// never count as regressions.
func compare(baseline, current *stageFile, warnPct float64) (table string, regressions []string) {
	names := make(map[string]bool)
	for n := range baseline.Stages {
		names[n] = true
	}
	for n := range current.Stages {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var totalBase, totalCur float64
	table = fmt.Sprintf("%-14s %12s %12s %9s\n", "stage", "base wall-ms", "cur wall-ms", "Δ%")
	for _, n := range sorted {
		b, inBase := baseline.Stages[n]
		c, inCur := current.Stages[n]
		switch {
		case !inBase:
			table += fmt.Sprintf("%-14s %12s %12.3f %9s\n", n, "—", c.WallMS, "new")
		case !inCur:
			table += fmt.Sprintf("%-14s %12.3f %12s %9s\n", n, b.WallMS, "—", "gone")
		default:
			totalBase += b.WallMS
			totalCur += c.WallMS
			pct := 0.0
			if b.WallMS > 0 {
				pct = (c.WallMS - b.WallMS) / b.WallMS * 100
			}
			mark := ""
			if pct > warnPct {
				mark = "  ← REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("stage %s wall time regressed %.1f%% (%.3f → %.3f ms, warn threshold %g%%)",
						n, pct, b.WallMS, c.WallMS, warnPct))
			}
			table += fmt.Sprintf("%-14s %12.3f %12.3f %+8.1f%%%s\n", n, b.WallMS, c.WallMS, pct, mark)
		}
	}
	if totalBase > 0 {
		pct := (totalCur - totalBase) / totalBase * 100
		mark := ""
		if pct > warnPct {
			mark = "  ← REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("total wall time regressed %.1f%% (%.3f → %.3f ms, warn threshold %g%%)",
					pct, totalBase, totalCur, warnPct))
		}
		table += fmt.Sprintf("%-14s %12.3f %12.3f %+8.1f%%%s\n", "TOTAL", totalBase, totalCur, pct, mark)
	}
	return table, regressions
}

// compareMem renders a per-benchmark allocs/op trajectory and returns
// the benchmarks whose allocation count regressed by more than
// allocsWarnPct percent. Baselines without mem data (pre-allocs
// emissions) and new benchmarks report "—" and never regress.
func compareMem(baseline, current *stageFile, allocsWarnPct float64) (table string, regressions []string) {
	if len(baseline.Mem) == 0 && len(current.Mem) == 0 {
		return "", nil
	}
	names := make(map[string]bool)
	for n := range baseline.Mem {
		names[n] = true
	}
	for n := range current.Mem {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	table = fmt.Sprintf("%-28s %15s %15s %9s\n", "benchmark", "base allocs/op", "cur allocs/op", "Δ%")
	for _, n := range sorted {
		b, inBase := baseline.Mem[n]
		c, inCur := current.Mem[n]
		switch {
		case !inBase:
			table += fmt.Sprintf("%-28s %15s %15.0f %9s\n", n, "—", c.AllocsPerOp, "new")
		case !inCur:
			table += fmt.Sprintf("%-28s %15.0f %15s %9s\n", n, b.AllocsPerOp, "—", "gone")
		default:
			pct := 0.0
			if b.AllocsPerOp > 0 {
				pct = (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp * 100
			}
			mark := ""
			if pct > allocsWarnPct {
				mark = "  ← REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s allocs/op regressed %.1f%% (%.0f → %.0f, warn threshold %g%%)",
						n, pct, b.AllocsPerOp, c.AllocsPerOp, allocsWarnPct))
			}
			table += fmt.Sprintf("%-28s %15.0f %15.0f %+8.1f%%%s\n", n, b.AllocsPerOp, c.AllocsPerOp, pct, mark)
		}
	}
	return table, regressions
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline emission (default bench/BENCH_stage_timings.baseline.json, or bench/BENCH_quality.baseline.json with -quality)")
		currentPath  = flag.String("current", "", "this run's emission (default BENCH_stage_timings.json, or BENCH_quality.json with -quality)")
		warnPct      = flag.Float64("warn-pct", 15, "wall-time regression percentage that triggers a warning")
		allocsPct    = flag.Float64("allocs-warn-pct", 25, "allocs/op regression percentage that triggers a warning")
		hard         = flag.Bool("hard", false, "exit 1 on regression instead of soft-warning (dedicated bench hardware only)")
		quality      = flag.Bool("quality", false, "compare BENCH_quality.json emissions (deterministic fidelity/privacy scores) instead of stage timings")
		tvdTol       = flag.Float64("tvd-tol", 0.02, "with -quality: max absolute rise in mean marginal TVD")
		accTol       = flag.Float64("acc-tol", 0.05, "with -quality: max absolute drop in per-model synth-trained accuracy")
		miaTol       = flag.Float64("mia-tol", 0.05, "with -quality: max absolute rise in per-model MIA advantage")
	)
	flag.Parse()
	if *baselinePath == "" {
		if *quality {
			*baselinePath = "bench/BENCH_quality.baseline.json"
		} else {
			*baselinePath = "bench/BENCH_stage_timings.baseline.json"
		}
	}
	if *currentPath == "" {
		if *quality {
			*currentPath = "BENCH_quality.json"
		} else {
			*currentPath = "BENCH_stage_timings.json"
		}
	}
	if *quality {
		runQuality(*baselinePath, *currentPath, qualityTols{TVD: *tvdTol, Acc: *accTol, MIA: *miaTol}, *hard)
		return
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(2)
	}
	if why := kernelMismatch(baseline, current); why != "" {
		fmt.Fprintf(os.Stderr, "benchtraj: refusing cross-substrate comparison: %s\n", why)
		fmt.Fprintln(os.Stderr, "benchtraj: regenerate the baseline on this build matrix cell, or compare like against like")
		os.Exit(2)
	}
	if baseline.Kernel == nil && current.Kernel != nil {
		fmt.Println("note: baseline predates kernel metadata — comparing anyway; regenerate it to enable the substrate guard")
	}
	fmt.Printf("bench trajectory: %s (baseline %s/N=%d vs current %s/N=%d)\n",
		current.Benchmark, baseline.Go, baseline.N, current.Go, current.N)
	table, regressions := compare(baseline, current, *warnPct)
	fmt.Print(table)
	memTable, memRegressions := compareMem(baseline, current, *allocsPct)
	if memTable != "" {
		fmt.Print(memTable)
	}
	regressions = append(regressions, memRegressions...)
	for _, r := range regressions {
		// ::warning renders as an annotation on the GitHub Actions run;
		// locally it is just a loud line.
		fmt.Printf("::warning title=bench trajectory::%s\n", r)
	}
	if len(regressions) == 0 {
		fmt.Printf("no stage regressed past %g%% wall time or %g%% allocs/op\n", *warnPct, *allocsPct)
	} else if *hard {
		os.Exit(1)
	}
}
