// Command experiments reruns the paper's evaluation: every table and
// figure of "NetDPSyn: Synthesizing Network Traces under Differential
// Privacy" (IMC 2024), at a configurable reduced scale, printing the
// paper-style text tables.
//
// Usage:
//
//	experiments -run all            # everything (minutes)
//	experiments -run fig3,table1    # just the classification study
//	experiments -rows 12000 -gum 50 # bigger scale, more GUM rounds
//
// Experiment names: fig2 fig3 table1 fig4 table2 table3 table4 table5
// fig5 fig6 fig7 table6 table7 fig8 appendixg ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment list or 'all'")
		rows    = flag.Int("rows", 6000, "base record count (TON scales to ≈0.3×, as in Table 5)")
		eps     = flag.Float64("eps", 2.0, "privacy budget ε")
		gum     = flag.Int("gum", 30, "GUM update iterations for NetDPSyn")
		runs    = flag.Int("sketchruns", 3, "repetitions per sketch (Figure 2)")
		seed    = flag.Uint64("seed", 42, "random seed")
		workers = flag.Int("workers", 0, "NetDPSyn worker pool size (0 = all cores; results identical for any value)")
	)
	flag.Parse()
	sc := experiments.Scale{
		Rows: *rows, Epsilon: *eps, Delta: 1e-5,
		GUMIterations: *gum, SketchRuns: *runs, Seed: *seed,
		Workers: *workers,
	}
	if err := run(sc, *runList); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	fn   func(*experiments.Runner) error
}

func run(sc experiments.Scale, runList string) error {
	r := experiments.NewRunner(sc)
	all := []experiment{
		{"table5", func(r *experiments.Runner) error { return printGrid(experiments.Table5(r)) }},
		{"table4", func(r *experiments.Runner) error {
			s, err := experiments.Table4(r)
			if err != nil {
				return err
			}
			fmt.Println(s)
			return nil
		}},
		{"fig2", func(r *experiments.Runner) error {
			grids, err := experiments.Figure2(r)
			if err != nil {
				return err
			}
			return printPerDataset(grids)
		}},
		{"fig3", func(r *experiments.Runner) error {
			res, err := experiments.Figure3(r)
			if err != nil {
				return err
			}
			if err := printPerDataset(res.Accuracy); err != nil {
				return err
			}
			fmt.Println(res.RankCorr)
			return nil
		}},
		{"table1", func(r *experiments.Runner) error {
			res, err := experiments.Figure3(r)
			if err != nil {
				return err
			}
			fmt.Println(res.RankCorr)
			return nil
		}},
		{"fig4", func(r *experiments.Runner) error {
			res, err := experiments.Figure4(r)
			if err != nil {
				return err
			}
			if err := printPerDataset(res.RelErr); err != nil {
				return err
			}
			fmt.Println(res.RankCorr)
			return nil
		}},
		{"table2", func(r *experiments.Runner) error {
			res, err := experiments.Figure4(r)
			if err != nil {
				return err
			}
			fmt.Println(res.RankCorr)
			return nil
		}},
		{"table3", func(r *experiments.Runner) error { return printGrid(experiments.Table3(r)) }},
		{"fig5", func(r *experiments.Runner) error {
			res, err := experiments.Figure5(r)
			if err != nil {
				return err
			}
			fmt.Println(res.JSD)
			fmt.Println(res.EMD)
			return nil
		}},
		{"fig6", func(r *experiments.Runner) error {
			res, err := experiments.Figure6(r)
			if err != nil {
				return err
			}
			fmt.Println(res.JSD)
			fmt.Println(res.EMD)
			return nil
		}},
		{"fig7", func(r *experiments.Runner) error { return printPerModel(experiments.Figure7(r)) }},
		{"table6", func(r *experiments.Runner) error { return printPerModel(experiments.Table6(r)) }},
		{"table7", func(r *experiments.Runner) error { return printPerModel(experiments.Table7(r)) }},
		{"fig8", func(r *experiments.Runner) error { return printPerModel(experiments.Figure8(r)) }},
		{"appendixg", func(r *experiments.Runner) error { return printGrid(experiments.AppendixG(r)) }},
		{"ablations", func(r *experiments.Runner) error { return printGrid(experiments.Ablations(r)) }},
		{"copula", func(r *experiments.Runner) error { return printGrid(experiments.CopulaComparison(r)) }},
		{"windowed", func(r *experiments.Runner) error { return printGrid(experiments.WindowedComparison(r)) }},
	}

	want := map[string]bool{}
	if runList != "all" {
		for _, n := range strings.Split(runList, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	for _, ex := range all {
		if runList != "all" && !want[ex.name] {
			continue
		}
		fmt.Printf("=== %s ===\n", ex.name)
		if err := ex.fn(r); err != nil {
			fmt.Printf("%s failed: %v\n\n", ex.name, err)
			continue
		}
		fmt.Println()
	}
	return nil
}

func printGrid(g *experiments.Grid, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(g)
	return nil
}

func printPerDataset(grids map[datagen.Name]*experiments.Grid) error {
	names := make([]string, 0, len(grids))
	for ds := range grids {
		names = append(names, string(ds))
	}
	sort.Strings(names)
	for _, ds := range names {
		fmt.Println(grids[datagen.Name(ds)])
	}
	return nil
}

func printPerModel(grids map[string]*experiments.Grid, err error) error {
	if err != nil {
		return err
	}
	names := make([]string, 0, len(grids))
	for m := range grids {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		fmt.Println(grids[m])
	}
	return nil
}
