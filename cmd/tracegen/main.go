// Command tracegen emits the emulated evaluation datasets (TON,
// UGR16, CIDDS, CAIDA, DC) as CSV traces. The real datasets are not
// redistributable; these emulators reproduce their documented shape
// (see DESIGN.md) and are the input of every experiment in this
// repository.
//
// Usage:
//
//	tracegen -dataset TON -rows 100000 -seed 42 > ton.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

func main() {
	var (
		name = flag.String("dataset", "TON", "dataset: TON, UGR16, CIDDS, CAIDA, DC")
		rows = flag.Int("rows", 10000, "record count (0 = full scale from Table 5)")
		seed = flag.Uint64("seed", 42, "random seed")
		out  = flag.String("out", "", "output CSV path (default: stdout)")
	)
	flag.Parse()
	if err := run(datagen.Name(*name), *rows, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name datagen.Name, rows int, seed uint64, out string) error {
	table, err := datagen.Generate(name, datagen.Config{Rows: rows, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d records, %d attributes, label=%s\n",
		name, table.NumRows(), table.NumCols(), datagen.LabelField(name))
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return table.WriteCSV(w)
}
