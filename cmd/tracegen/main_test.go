package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netdpsyn/netdpsyn/internal/datagen"
)

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range datagen.Datasets() {
		out := filepath.Join(dir, string(name)+".csv")
		if err := run(name, 300, 3, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 100 {
			t.Fatalf("%s: only %d lines", name, len(lines))
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(datagen.Name("NOPE"), 10, 1, ""); err == nil {
		t.Fatal("unknown dataset must error")
	}
}
