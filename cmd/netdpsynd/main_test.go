package main

import "testing"

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions(":8090", 4, 2, 8.0, 1e-5, "", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 4 || opts.MaxConcurrentJobs != 2 || opts.DefaultBudgetEps != 8.0 {
		t.Fatalf("options = %+v", opts)
	}
	if opts.StateDir != "" {
		t.Fatalf("state dir should default off, got %q", opts.StateDir)
	}
	opts, err = buildOptions(":8090", 4, 2, 8.0, 1e-5, "/tmp/netdpsynd-state", 3600, 500_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if opts.StateDir != "/tmp/netdpsynd-state" {
		t.Fatalf("state dir = %q", opts.StateDir)
	}
	if opts.DefaultWindowSpan != 3600 || opts.MaxWindowRows != 500_000 || !opts.AllowVolatileStream {
		t.Fatalf("streaming options = %+v", opts)
	}

	bad := []struct {
		name       string
		addr       string
		workers    int
		jobs       int
		eps, delta float64
		span       int64
		maxRows    int
	}{
		{"empty addr", "", 0, 2, 8, 1e-5, 0, 0},
		{"negative workers", ":8090", -1, 2, 8, 1e-5, 0, 0},
		{"zero jobs", ":8090", 0, 0, 8, 1e-5, 0, 0},
		{"zero budget eps", ":8090", 0, 2, 0, 1e-5, 0, 0},
		{"delta one", ":8090", 0, 2, 8, 1, 0, 0},
		{"negative window span", ":8090", 0, 2, 8, 1e-5, -1, 0},
		{"negative max window rows", ":8090", 0, 2, 8, 1e-5, 0, -1},
	}
	for _, tc := range bad {
		if _, err := buildOptions(tc.addr, tc.workers, tc.jobs, tc.eps, tc.delta, "", tc.span, tc.maxRows, false); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
