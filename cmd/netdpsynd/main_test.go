package main

import (
	"testing"
	"time"
)

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions(flagValues{addr: ":8090", workers: 4, jobs: 2, budgetEps: 8.0, budgetDelta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 4 || opts.MaxConcurrentJobs != 2 || opts.DefaultBudgetEps != 8.0 {
		t.Fatalf("options = %+v", opts)
	}
	if opts.StateDir != "" {
		t.Fatalf("state dir should default off, got %q", opts.StateDir)
	}
	opts, err = buildOptions(flagValues{
		addr: ":8090", workers: 4, jobs: 2, budgetEps: 8.0, budgetDelta: 1e-5,
		stateDir: "/tmp/netdpsynd-state", windowSpan: 3600, maxWinRows: 500_000,
		stream: true, follow: true, sealAfter: time.Minute,
		maxResults: 32, resultTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.StateDir != "/tmp/netdpsynd-state" {
		t.Fatalf("state dir = %q", opts.StateDir)
	}
	if opts.DefaultWindowSpan != 3600 || opts.MaxWindowRows != 500_000 || !opts.AllowVolatileStream {
		t.Fatalf("streaming options = %+v", opts)
	}
	if !opts.AllowVolatileFeed || opts.SealAfter != time.Minute {
		t.Fatalf("feed options = %+v", opts)
	}
	if opts.MaxResults != 32 || opts.ResultTTL != time.Hour {
		t.Fatalf("retention options = %+v", opts)
	}

	good := flagValues{addr: ":8090", jobs: 2, budgetEps: 8, budgetDelta: 1e-5}
	bad := []struct {
		name   string
		mutate func(*flagValues)
	}{
		{"empty addr", func(f *flagValues) { f.addr = "" }},
		{"negative workers", func(f *flagValues) { f.workers = -1 }},
		{"zero jobs", func(f *flagValues) { f.jobs = 0 }},
		{"zero budget eps", func(f *flagValues) { f.budgetEps = 0 }},
		{"delta one", func(f *flagValues) { f.budgetDelta = 1 }},
		{"negative window span", func(f *flagValues) { f.windowSpan = -1 }},
		{"negative max window rows", func(f *flagValues) { f.maxWinRows = -1 }},
		{"negative seal-after", func(f *flagValues) { f.sealAfter = -time.Second }},
		{"negative max-results", func(f *flagValues) { f.maxResults = -1 }},
		{"negative result-ttl", func(f *flagValues) { f.resultTTL = -time.Second }},
	}
	for _, tc := range bad {
		f := good
		tc.mutate(&f)
		if _, err := buildOptions(f); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
