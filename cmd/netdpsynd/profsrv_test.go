package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestProfServer exercises the -pprof listener end to end: bind an
// ephemeral port, hit the index and a sampling endpoint, and confirm
// the profiles the performance docs point at are actually served.
func TestProfServer(t *testing.T) {
	metrics := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "# mirrored exposition")
	})
	prof, err := newProfServer("127.0.0.1:0", metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer prof.close()
	go prof.serve()
	base := "http://" + prof.addrString()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("index = %d", code)
	}
	for _, want := range []string{"heap", "goroutine", "allocs"} {
		if !strings.Contains(body, want) {
			t.Errorf("pprof index missing %q profile", want)
		}
	}

	if code, _ := get("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Errorf("heap profile = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("cmdline = %d", code)
	}
	if code, _ := get("/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("symbol = %d", code)
	}
	// The side listener mirrors the service's /metrics exposition.
	if code, body := get("/metrics"); code != http.StatusOK {
		t.Errorf("metrics mirror = %d", code)
	} else if !strings.Contains(body, "mirrored exposition") {
		t.Errorf("metrics mirror served the wrong handler: %q", body)
	}
}

// TestProfServerBadAddr makes a malformed -pprof address fail at
// startup, not at first scrape.
func TestProfServerBadAddr(t *testing.T) {
	if _, err := newProfServer("definitely:not:an:addr", nil); err == nil {
		t.Fatal("expected error for malformed address")
	} else if !strings.Contains(fmt.Sprint(err), "pprof listener") {
		t.Fatalf("unexpected error: %v", err)
	}
}
