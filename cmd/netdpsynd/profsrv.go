package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// profServer exposes net/http/pprof on its own listener, separate
// from the service port: profiling endpoints carry no auth and dump
// process internals, so they bind to their own (typically loopback)
// address instead of riding the public mux. Started with -pprof; the
// synthesis hot path (GUM planning) is what profile and allocs are
// for — see the README's performance section. The same listener
// mirrors GET /metrics so an ops scrape never has to touch the
// public service port — like the pprof endpoints, the mirror is
// unauthenticated, which is exactly why the listener should stay on
// loopback (or an otherwise firewalled interface).
type profServer struct {
	ln  net.Listener
	srv *http.Server
}

// newProfServer binds addr and serves the standard pprof index plus
// the named handlers on it; metrics, when non-nil, is mounted at
// /metrics (the daemon passes the service's Prometheus exposition so
// both listeners render the identical registry). The returned server
// is already listening (so a bad addr fails fast at startup) but not
// yet serving.
func newProfServer(addr string, metrics http.Handler) (*profServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if metrics != nil {
		mux.Handle("GET /metrics", metrics)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener %s: %w", addr, err)
	}
	return &profServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}, nil
}

// addrString reports the bound address (resolving a ":0" request).
func (p *profServer) addrString() string {
	return p.ln.Addr().String()
}

// serve blocks on the pprof listener; a profiling server failing must
// not take the daemon down, so the error is logged, not returned.
func (p *profServer) serve() {
	if err := p.srv.Serve(p.ln); err != nil && err != http.ErrServerClosed {
		slog.Error("pprof server", "error", err)
	}
}

// close tears the listener down (used by shutdown and tests).
func (p *profServer) close() error {
	return p.srv.Close()
}
