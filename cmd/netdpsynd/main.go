// Command netdpsynd is the long-lived NetDPSyn synthesis service: it
// keeps registered trace datasets and warm pipelines in memory,
// meters cumulative zCDP spend per dataset against a ceiling, and
// runs synthesis requests through an async job queue.
//
// Usage:
//
//	netdpsynd -addr :8090 -workers 4 -jobs 2 -budget-eps 8 -state-dir /var/lib/netdpsynd
//
// Walkthrough (see the README for the full curl session):
//
//	curl -X POST --data-binary @flows.csv 'localhost:8090/datasets?schema=flow&label=label'
//	curl -X POST -d '{"epsilon":1.0,"seed":1}' localhost:8090/datasets/ds-1/synthesize
//	curl localhost:8090/jobs/job-1
//	curl localhost:8090/jobs/job-1/result.csv
//	curl localhost:8090/datasets/ds-1/budget
//
// Large traces stream: register with ?stream=1 (chunked upload is
// spooled straight to the state dir, never decoded whole), then
// synthesize with {"window_span": S} — the trace is cut into fixed
// time buckets of S timestamp units (membership is a function of each
// record alone, so the ledger charges one window's ρ under parallel
// composition), the job reports per-window progress, and result.csv
// streams windows as they complete. The -window-span flag supplies a
// default span for such datasets; -max-window-rows bounds one
// window's records so a too-coarse span fails instead of swallowing
// RAM; -stream accepts streaming registrations without a -state-dir
// by spooling to a temp dir. In-memory datasets also accept
// {"windows": N} count-quantile windows, charged N × ρ (their
// boundaries are data-dependent, so the windows compose sequentially,
// not in parallel).
//
// With -state-dir the daemon is restart-safe: the budget ledger,
// dataset registry, and job journal are persisted (every charge
// fsync'd before its job runs), so a crash never forgets cumulative
// zCDP spend — interrupted jobs replay as charged failures and a
// restart resumes exactly where the meter stopped. Without it, all
// state is in-memory and dies with the process.
//
// The daemon drains admitted jobs on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.Int("workers", 0, "global synthesis worker budget shared across jobs (0 = all cores)")
		jobs        = flag.Int("jobs", 2, "max concurrent synthesis jobs")
		budgetEps   = flag.Float64("budget-eps", 8.0, "default per-dataset cumulative ε ceiling")
		budgetDelta = flag.Float64("budget-delta", 1e-5, "δ for the default budget ceiling")
		drain       = flag.Duration("drain", 2*time.Minute, "max time to drain in-flight jobs on shutdown")
		stateDir    = flag.String("state-dir", "", "directory for durable service state (budget ledger, dataset registry, job journal, result spool); empty = in-memory only, spend is forgotten on restart")
		windowSpan  = flag.Int64("window-span", 0, "default time-window span (timestamp units) for synthesis against streaming datasets whose request omits window_span (0 = require an explicit value)")
		maxWinRows  = flag.Int("max-window-rows", 0, "max records one streaming time window may hold before the job fails (0 = a ~1M-row default)")
		stream      = flag.Bool("stream", false, "accept streaming registrations (?stream=1) without -state-dir by spooling uploads to a temp dir (not restart-safe)")
	)
	flag.Parse()
	opts, err := buildOptions(*addr, *workers, *jobs, *budgetEps, *budgetDelta, *stateDir, *windowSpan, *maxWinRows, *stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdpsynd:", err)
		os.Exit(2)
	}
	if err := run(opts, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "netdpsynd:", err)
		os.Exit(1)
	}
}

// buildOptions validates the flag values into serve.Options.
func buildOptions(addr string, workers, jobs int, budgetEps, budgetDelta float64, stateDir string, windowSpan int64, maxWinRows int, stream bool) (serve.Options, error) {
	if windowSpan < 0 {
		return serve.Options{}, fmt.Errorf("-window-span must be non-negative, got %d", windowSpan)
	}
	if maxWinRows < 0 {
		return serve.Options{}, fmt.Errorf("-max-window-rows must be non-negative, got %d", maxWinRows)
	}
	if addr == "" {
		return serve.Options{}, fmt.Errorf("missing -addr")
	}
	if workers < 0 {
		return serve.Options{}, fmt.Errorf("-workers must be non-negative, got %d", workers)
	}
	if jobs <= 0 {
		return serve.Options{}, fmt.Errorf("-jobs must be positive, got %d", jobs)
	}
	if !(budgetEps > 0) || math.IsInf(budgetEps, 0) { // !(x > 0) also catches NaN
		return serve.Options{}, fmt.Errorf("-budget-eps must be positive and finite, got %v", budgetEps)
	}
	if !(budgetDelta > 0) || budgetDelta >= 1 {
		return serve.Options{}, fmt.Errorf("-budget-delta must be in (0,1), got %v", budgetDelta)
	}
	return serve.Options{
		Addr:                addr,
		Workers:             workers,
		MaxConcurrentJobs:   jobs,
		DefaultBudgetEps:    budgetEps,
		DefaultBudgetDelta:  budgetDelta,
		StateDir:            stateDir,
		DefaultWindowSpan:   windowSpan,
		MaxWindowRows:       maxWinRows,
		AllowVolatileStream: stream,
	}, nil
}

func run(opts serve.Options, drain time.Duration) error {
	s, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	if rec := s.Recovery(); rec != nil {
		log.Printf("netdpsynd state dir %s: %s", opts.StateDir, rec)
		for _, warn := range rec.Warnings {
			log.Printf("netdpsynd recovery warning: %s", warn)
		}
	} else {
		log.Printf("netdpsynd running without -state-dir: ledger, registry, and jobs are in-memory and cumulative spend is forgotten on restart")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	log.Printf("netdpsynd listening on %s (jobs=%d, default ceiling ε=%g @ δ=%g)",
		opts.Addr, opts.MaxConcurrentJobs, opts.DefaultBudgetEps, opts.DefaultBudgetDelta)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Restore default signal handling immediately: a second
	// SIGINT/SIGTERM during the drain kills the process instead of
	// being swallowed for the full -drain window.
	stop()
	log.Printf("netdpsynd shutting down: draining jobs (up to %v); signal again to force quit", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
