// Command netdpsynd is the long-lived NetDPSyn synthesis service: it
// keeps registered trace datasets and warm pipelines in memory,
// meters cumulative zCDP spend per dataset against a ceiling, and
// runs synthesis requests through an async job queue.
//
// Usage:
//
//	netdpsynd -addr :8090 -workers 4 -jobs 2 -budget-eps 8 -state-dir /var/lib/netdpsynd
//
// Walkthrough (see the README for the full curl session):
//
//	curl -X POST --data-binary @flows.csv 'localhost:8090/datasets?schema=flow&label=label'
//	curl -X POST -d '{"epsilon":1.0,"seed":1}' localhost:8090/datasets/ds-1/synthesize
//	curl localhost:8090/jobs/job-1
//	curl localhost:8090/jobs/job-1/result.csv
//	curl -X POST -d '{"job_id":"job-1","metrics":["tvd","ml","mia"]}' localhost:8090/datasets/ds-1/evaluate
//	curl localhost:8090/datasets/ds-1/budget
//
// The evaluate endpoint scores a finished release against its source:
// release-only statistics are free (DP post-processing), while any
// raw-touching metric (marginal TVD, downstream ML accuracy,
// membership-inference advantage) prices a fresh raw pass at
// ρ(ε, δ) through the same ledger gate as a synthesis — the scores
// land in the evaluation block of GET /jobs/{id}.
//
// Large traces stream: register with ?stream=1 (chunked upload is
// spooled straight to the state dir, never decoded whole), then
// synthesize with {"window_span": S} — the trace is cut into fixed
// time buckets of S timestamp units (membership is a function of each
// record alone, so each window charges one window's ρ to its own
// (span, bucket) ledger key and distinct keys compose in parallel —
// the ledger position is their max), the job reports per-window
// progress, and result.csv streams windows as they complete. The
// -window-span flag supplies a default span for such datasets;
// -max-window-rows bounds one window's records so a too-coarse span
// fails instead of swallowing RAM; -stream accepts streaming
// registrations without a -state-dir by spooling to a temp dir.
// In-memory datasets also accept {"windows": N} count-quantile
// windows, charged N × ρ (their boundaries are data-dependent, so the
// windows compose sequentially, not in parallel).
//
// Continuous ingest: register a live window feed with ?feed=1&span=S
// (no body), PUT whole windows to /datasets/{id}/windows/{bucket} as
// they are captured (seal-on-PUT; re-PUT of a sealed bucket is 409),
// and submit {"follow": true} — the job synthesizes each window as it
// lands and finishes when the feed is sealed (POST
// /datasets/{id}/seal, or automatically after -seal-after of
// inactivity). Re-releasing the same bucket in a later epoch charges
// that bucket's key again — sequential composition on the key, while
// distinct buckets still cost the max. -follow accepts feed
// registrations without a -state-dir (volatile).
//
// With -state-dir the daemon is restart-safe: the budget ledger
// (scalar and per-window-key), dataset registry, window arrivals, and
// job journal are persisted (every charge fsync'd before its job
// runs), so a crash never forgets cumulative zCDP spend — interrupted
// jobs replay as charged failures, while an interrupted follow job
// RESUMES at the next bucket with exact per-key ledger positions.
// Without it, all state is in-memory and dies with the process.
//
// Result retention: -max-results bounds how many finished results are
// kept (in memory and under results/), and -result-ttl ages them out;
// evicted results answer 410 Gone and an identical resubmit
// regenerates them at zero budget cost.
//
// The daemon drains admitted jobs on SIGINT/SIGTERM before exiting
// (sealing live feeds so follow jobs finish).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netdpsyn/netdpsyn/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.Int("workers", 0, "global synthesis worker budget shared across jobs (0 = all cores)")
		jobs        = flag.Int("jobs", 2, "max concurrent synthesis jobs")
		budgetEps   = flag.Float64("budget-eps", 8.0, "default per-dataset cumulative ε ceiling")
		budgetDelta = flag.Float64("budget-delta", 1e-5, "δ for the default budget ceiling")
		drain       = flag.Duration("drain", 2*time.Minute, "max time to drain in-flight jobs on shutdown")
		stateDir    = flag.String("state-dir", "", "directory for durable service state (budget ledger, dataset registry, job journal, result spool); empty = in-memory only, spend is forgotten on restart")
		windowSpan  = flag.Int64("window-span", 0, "default time-window span (timestamp units) for synthesis against streaming datasets whose request omits window_span (0 = require an explicit value)")
		maxWinRows  = flag.Int("max-window-rows", 0, "max records one streaming time window (or one PUT window) may hold before it is refused (0 = a ~1M-row default)")
		stream      = flag.Bool("stream", false, "accept streaming registrations (?stream=1) without -state-dir by spooling uploads to a temp dir (not restart-safe)")
		follow      = flag.Bool("follow", false, "accept live window-feed registrations (?feed=1) without -state-dir (in-memory feed, not restart-safe)")
		sealAfter   = flag.Duration("seal-after", 0, "auto-seal a live feed after this much inactivity so follow jobs finish (0 = only explicit POST /datasets/{id}/seal)")
		maxResults  = flag.Int("max-results", 0, "max finished results retained, in memory and under results/ (0 = 256); older results answer 410 Gone and regenerate on resubmit at zero budget cost")
		resultTTL   = flag.Duration("result-ttl", 0, "age out finished results older than this (0 = no age sweep)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof (plus a mirrored /metrics) on this separate address (e.g. localhost:6060); empty = disabled. The endpoints are unauthenticated — bind to loopback")
	)
	flag.Parse()
	opts, err := buildOptions(flagValues{
		addr: *addr, workers: *workers, jobs: *jobs,
		budgetEps: *budgetEps, budgetDelta: *budgetDelta,
		stateDir: *stateDir, windowSpan: *windowSpan, maxWinRows: *maxWinRows,
		stream: *stream, follow: *follow, sealAfter: *sealAfter,
		maxResults: *maxResults, resultTTL: *resultTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdpsynd:", err)
		os.Exit(2)
	}
	if err := run(opts, *drain, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "netdpsynd:", err)
		os.Exit(1)
	}
}

// flagValues carries the parsed flags into buildOptions.
type flagValues struct {
	addr                   string
	workers, jobs          int
	budgetEps, budgetDelta float64
	stateDir               string
	windowSpan             int64
	maxWinRows             int
	stream, follow         bool
	sealAfter              time.Duration
	maxResults             int
	resultTTL              time.Duration
}

// buildOptions validates the flag values into serve.Options.
func buildOptions(f flagValues) (serve.Options, error) {
	if f.windowSpan < 0 {
		return serve.Options{}, fmt.Errorf("-window-span must be non-negative, got %d", f.windowSpan)
	}
	if f.maxWinRows < 0 {
		return serve.Options{}, fmt.Errorf("-max-window-rows must be non-negative, got %d", f.maxWinRows)
	}
	if f.addr == "" {
		return serve.Options{}, fmt.Errorf("missing -addr")
	}
	if f.workers < 0 {
		return serve.Options{}, fmt.Errorf("-workers must be non-negative, got %d", f.workers)
	}
	if f.jobs <= 0 {
		return serve.Options{}, fmt.Errorf("-jobs must be positive, got %d", f.jobs)
	}
	if !(f.budgetEps > 0) || math.IsInf(f.budgetEps, 0) { // !(x > 0) also catches NaN
		return serve.Options{}, fmt.Errorf("-budget-eps must be positive and finite, got %v", f.budgetEps)
	}
	if !(f.budgetDelta > 0) || f.budgetDelta >= 1 {
		return serve.Options{}, fmt.Errorf("-budget-delta must be in (0,1), got %v", f.budgetDelta)
	}
	if f.sealAfter < 0 {
		return serve.Options{}, fmt.Errorf("-seal-after must be non-negative, got %v", f.sealAfter)
	}
	if f.maxResults < 0 {
		return serve.Options{}, fmt.Errorf("-max-results must be non-negative, got %d", f.maxResults)
	}
	if f.resultTTL < 0 {
		return serve.Options{}, fmt.Errorf("-result-ttl must be non-negative, got %v", f.resultTTL)
	}
	return serve.Options{
		Addr:                f.addr,
		Workers:             f.workers,
		MaxConcurrentJobs:   f.jobs,
		DefaultBudgetEps:    f.budgetEps,
		DefaultBudgetDelta:  f.budgetDelta,
		StateDir:            f.stateDir,
		DefaultWindowSpan:   f.windowSpan,
		MaxWindowRows:       f.maxWinRows,
		AllowVolatileStream: f.stream,
		AllowVolatileFeed:   f.follow,
		SealAfter:           f.sealAfter,
		MaxResults:          f.maxResults,
		ResultTTL:           f.resultTTL,
	}, nil
}

func run(opts serve.Options, drain time.Duration, pprofAddr string) error {
	// One structured logger for the whole daemon: key=value text on
	// stderr. The serve layer threads a request_id attribute through
	// every request-scoped line.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	opts.Logger = logger

	s, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		// The side listener mirrors /metrics next to the pprof
		// endpoints; both are unauthenticated, so keep this address on
		// loopback.
		prof, err := newProfServer(pprofAddr, s.MetricsHandler())
		if err != nil {
			return err
		}
		defer prof.close()
		go prof.serve()
		logger.Info("pprof sidecar listening",
			"pprof", "http://"+prof.addrString()+"/debug/pprof/",
			"metrics", "http://"+prof.addrString()+"/metrics")
	}
	if rec := s.Recovery(); rec != nil {
		logger.Info("state recovered", "state_dir", opts.StateDir, "recovery", rec.String())
		for _, warn := range rec.Warnings {
			logger.Warn("recovery warning", "warning", warn)
		}
	} else {
		logger.Warn("running without -state-dir: ledger, registry, and jobs are in-memory and cumulative spend is forgotten on restart")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	logger.Info("listening",
		"addr", opts.Addr,
		"jobs", opts.MaxConcurrentJobs,
		"budget_eps", opts.DefaultBudgetEps,
		"budget_delta", opts.DefaultBudgetDelta)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Restore default signal handling immediately: a second
	// SIGINT/SIGTERM during the drain kills the process instead of
	// being swallowed for the full -drain window.
	stop()
	logger.Info("shutting down: draining jobs; signal again to force quit", "drain", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}
