//go:build !windows

package main

// Crash/restart durability harness: builds the real netdpsynd binary,
// kills it with SIGKILL mid-job, restarts it with the same -state-dir,
// and asserts the acceptance contract over plain HTTP:
//
//  1. cumulative ρ after restart ≥ cumulative ρ before the crash
//  2. the interrupted job replays as a charged failure
//  3. a request that would cross the ceiling still gets 403
//  4. an identical resubmit of a completed job is served from cache
//     at zero new spend (and regenerates its evicted result)
//
// The in-process twin of this test lives in internal/serve
// (TestRestartRecovery); this one exists because only a subprocess
// can die the way production dies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/serve"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the built binary and waits for /healthz.
func startDaemon(t *testing.T, bin, addr, stateDir string, logs *bytes.Buffer) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-jobs", "1", "-workers", "1", "-state-dir", stateDir)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("daemon never became healthy on %s; logs:\n%s", addr, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func getJSONInto(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postSynth(t *testing.T, base, dsID string, req serve.SynthesisRequest) (serve.SynthesisResponse, int) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets/"+dsID+"/synthesize", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack serve.SynthesisResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return ack, resp.StatusCode
}

// waitJobState polls a job until pred holds or the deadline passes.
func waitJobState(t *testing.T, base, jobID string, timeout time.Duration, pred func(serve.JobInfo) bool) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var info serve.JobInfo
		if code := getJSONInto(t, base+"/jobs/"+jobID, &info); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", jobID, code)
		}
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v", jobID, info.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a daemon subprocess; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "netdpsynd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	stateDir := filepath.Join(tmp, "state")

	jobRho, err := netdpsyn.RhoFromEpsDelta(1.0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := 2.5 * jobRho // two releases fit, a third does not

	addr := freePort(t)
	base := "http://" + addr
	var logs bytes.Buffer
	daemon := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon.Process.Kill() }()

	// Register an emulated TON flow trace with the 2.5-release ceiling.
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := raw.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	regURL := fmt.Sprintf("%s/datasets?label=%s&budget_rho=%g&budget_delta=1e-5",
		base, datagen.LabelField(datagen.TON), ceiling)
	resp, err := http.Post(regURL, "text/csv", &csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d", resp.StatusCode)
	}

	// Job A: quick, completes before the crash.
	reqA := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 11}
	ackA, code := postSynth(t, base, dsInfo.ID, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("job A = %d", code)
	}
	infoA := waitJobState(t, base, ackA.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone || i.State == serve.JobFailed
	})
	if infoA.State != serve.JobDone {
		t.Fatalf("job A = %s (%s)", infoA.State, infoA.Error)
	}

	// Job B: heavy enough to still be running when the SIGKILL lands.
	reqB := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 2000, Seed: 12}
	ackB, code := postSynth(t, base, dsInfo.ID, reqB)
	if code != http.StatusAccepted {
		t.Fatalf("job B = %d", code)
	}
	waitJobState(t, base, ackB.JobID, 30*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobRunning
	})

	var budget serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	preCrash := budget.SpentRho
	if preCrash < 2*jobRho-1e-12 {
		t.Fatalf("pre-crash spent ρ = %v, want ≥ %v", preCrash, 2*jobRho)
	}

	// kill -9 mid-job: no drain, no goodbye.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	// Restart with the same -state-dir.
	daemon2 := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon2.Process.Kill() }()

	// (1) Cumulative ρ is monotone across the restart.
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if budget.SpentRho < preCrash-1e-12 {
		t.Fatalf("spend shrank across kill -9: %v < %v", budget.SpentRho, preCrash)
	}

	// (2) The interrupted job replays as a charged failure.
	var infoB serve.JobInfo
	if code := getJSONInto(t, base+"/jobs/"+ackB.JobID, &infoB); code != http.StatusOK {
		t.Fatalf("GET interrupted job = %d", code)
	}
	if infoB.State != serve.JobFailed || !strings.Contains(infoB.Error, "restart") {
		t.Fatalf("interrupted job = %s (%q), want charged failure mentioning the restart", infoB.State, infoB.Error)
	}

	// (3) A third distinct release still crosses the ceiling: 403.
	if _, code := postSynth(t, base, dsInfo.ID, serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 13}); code != http.StatusForbidden {
		t.Fatalf("over-ceiling after restart = %d, want 403", code)
	}

	// (4) Identical resubmit of the completed job: cache hit, zero new
	// spend, and the evicted result regenerates deterministically.
	ackA2, code := postSynth(t, base, dsInfo.ID, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit A = %d", code)
	}
	if !ackA2.Cached || ackA2.JobID != ackA.JobID {
		t.Fatalf("resubmit A: cached=%v job=%s, want cache hit on %s", ackA2.Cached, ackA2.JobID, ackA.JobID)
	}
	var after serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &after)
	if after.SpentRho != budget.SpentRho {
		t.Fatalf("cached resubmit changed spend: %v → %v", budget.SpentRho, after.SpentRho)
	}
	waitJobState(t, base, ackA.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone && i.Records > 0
	})
	res, err := http.Get(base + "/jobs/" + ackA.JobID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("regenerated result.csv = %d", res.StatusCode)
	}

	// The recovery log line made it to the daemon's output.
	if !strings.Contains(logs.String(), "interrupted") {
		t.Fatalf("no recovery log line; logs:\n%s", logs.String())
	}

	_ = daemon2.Process.Signal(os.Interrupt)
	_ = daemon2.Wait()
}
