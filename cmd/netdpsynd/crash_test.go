//go:build !windows

package main

// Crash/restart durability harness: builds the real netdpsynd binary,
// kills it with SIGKILL mid-job, restarts it with the same -state-dir,
// and asserts the acceptance contract over plain HTTP:
//
//  1. cumulative ρ after restart ≥ cumulative ρ before the crash
//  2. the interrupted job replays as a charged failure
//  3. a request that would cross the ceiling still gets 403
//  4. an identical resubmit of a completed job is served from cache
//     at zero new spend (and regenerates its evicted result)
//
// The in-process twin of this test lives in internal/serve
// (TestRestartRecovery); this one exists because only a subprocess
// can die the way production dies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/obs"
	"github.com/netdpsyn/netdpsyn/internal/serve"
)

// syncBuffer is a mutex-guarded log sink: the exec.Cmd pipe copier
// writes it from its own goroutine while the test reads String(), so
// a bare bytes.Buffer is a data race under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the built binary and waits for /healthz.
func startDaemon(t *testing.T, bin, addr, stateDir string, logs *syncBuffer) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-jobs", "1", "-workers", "1", "-state-dir", stateDir)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("daemon never became healthy on %s; logs:\n%s", addr, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func getJSONInto(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// scrapeMetrics fetches /metrics and validates the exposition against
// the hand-rolled grammar checker before handing the body back.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	return string(body)
}

// metricValue extracts one sample's value from an exposition body by
// its exact rendered series name (name + label set).
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not in exposition:\n%s", series, body)
	return 0
}

func postSynth(t *testing.T, base, dsID string, req serve.SynthesisRequest) (serve.SynthesisResponse, int) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets/"+dsID+"/synthesize", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack serve.SynthesisResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return ack, resp.StatusCode
}

// waitJobState polls a job until pred holds or the deadline passes.
func waitJobState(t *testing.T, base, jobID string, timeout time.Duration, pred func(serve.JobInfo) bool) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var info serve.JobInfo
		if code := getJSONInto(t, base+"/jobs/"+jobID, &info); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", jobID, code)
		}
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v", jobID, info.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a daemon subprocess; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "netdpsynd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	stateDir := filepath.Join(tmp, "state")

	jobRho, err := netdpsyn.RhoFromEpsDelta(1.0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := 2.5 * jobRho // two releases fit, a third does not

	addr := freePort(t)
	base := "http://" + addr
	var logs syncBuffer
	daemon := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon.Process.Kill() }()

	// Register an emulated TON flow trace with the 2.5-release ceiling.
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := raw.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	regURL := fmt.Sprintf("%s/datasets?label=%s&budget_rho=%g&budget_delta=1e-5",
		base, datagen.LabelField(datagen.TON), ceiling)
	resp, err := http.Post(regURL, "text/csv", &csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d", resp.StatusCode)
	}

	// Job A: quick, completes before the crash.
	reqA := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 11}
	ackA, code := postSynth(t, base, dsInfo.ID, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("job A = %d", code)
	}
	infoA := waitJobState(t, base, ackA.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone || i.State == serve.JobFailed
	})
	if infoA.State != serve.JobDone {
		t.Fatalf("job A = %s (%s)", infoA.State, infoA.Error)
	}

	// Job B: heavy enough (~1s of GUM rounds on one core) to still be
	// running when the SIGKILL lands, even after the JobRunning poll
	// and budget read below.
	reqB := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 50000, Seed: 12}
	ackB, code := postSynth(t, base, dsInfo.ID, reqB)
	if code != http.StatusAccepted {
		t.Fatalf("job B = %d", code)
	}
	waitJobState(t, base, ackB.JobID, 30*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobRunning
	})

	var budget serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	preCrash := budget.SpentRho
	if preCrash < 2*jobRho-1e-12 {
		t.Fatalf("pre-crash spent ρ = %v, want ≥ %v", preCrash, 2*jobRho)
	}

	// Scrape /metrics pre-crash: the ledger gauges must agree with the
	// budget endpoint (both read the same ledger at scrape time).
	spentSeries := fmt.Sprintf(`netdpsynd_budget_spent_rho{dataset=%q}`, dsInfo.ID)
	ceilSeries := fmt.Sprintf(`netdpsynd_budget_ceiling_rho{dataset=%q}`, dsInfo.ID)
	preMetrics := scrapeMetrics(t, base)
	preSpentGauge := metricValue(t, preMetrics, spentSeries)
	if math.Abs(preSpentGauge-preCrash) > 1e-12 {
		t.Fatalf("pre-crash spend gauge = %v, budget endpoint = %v", preSpentGauge, preCrash)
	}
	preCeilGauge := metricValue(t, preMetrics, ceilSeries)

	// kill -9 mid-job: no drain, no goodbye.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	// Restart with the same -state-dir.
	daemon2 := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon2.Process.Kill() }()

	// (1) Cumulative ρ is monotone across the restart.
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if budget.SpentRho < preCrash-1e-12 {
		t.Fatalf("spend shrank across kill -9: %v < %v", budget.SpentRho, preCrash)
	}

	// The ledger gauges survive the SIGKILL exactly: the recovered
	// exposition renders the identical spend and ceiling (the gauges
	// read the replayed ledger at scrape time, so a spend that shrank
	// would be a journal-replay bug, not a metrics bug).
	postMetrics := scrapeMetrics(t, base)
	postSpentGauge := metricValue(t, postMetrics, spentSeries)
	if math.Abs(postSpentGauge-preSpentGauge) > 1e-12 {
		t.Fatalf("spend gauge changed across kill -9: %v → %v", preSpentGauge, postSpentGauge)
	}
	if ceil := metricValue(t, postMetrics, ceilSeries); math.Abs(ceil-preCeilGauge) > 1e-12 {
		t.Fatalf("ceiling gauge changed across kill -9: %v → %v", preCeilGauge, ceil)
	}

	// (2) The interrupted job replays as a charged failure.
	var infoB serve.JobInfo
	if code := getJSONInto(t, base+"/jobs/"+ackB.JobID, &infoB); code != http.StatusOK {
		t.Fatalf("GET interrupted job = %d", code)
	}
	if infoB.State != serve.JobFailed || !strings.Contains(infoB.Error, "restart") {
		t.Fatalf("interrupted job = %s (%q), want charged failure mentioning the restart", infoB.State, infoB.Error)
	}

	// (3) A third distinct release still crosses the ceiling: 403.
	if _, code := postSynth(t, base, dsInfo.ID, serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 13}); code != http.StatusForbidden {
		t.Fatalf("over-ceiling after restart = %d, want 403", code)
	}

	// (4) Identical resubmit of the completed job: cache hit, zero new
	// spend, and the evicted result regenerates deterministically.
	ackA2, code := postSynth(t, base, dsInfo.ID, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit A = %d", code)
	}
	if !ackA2.Cached || ackA2.JobID != ackA.JobID {
		t.Fatalf("resubmit A: cached=%v job=%s, want cache hit on %s", ackA2.Cached, ackA2.JobID, ackA.JobID)
	}
	var after serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &after)
	if after.SpentRho != budget.SpentRho {
		t.Fatalf("cached resubmit changed spend: %v → %v", budget.SpentRho, after.SpentRho)
	}
	waitJobState(t, base, ackA.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone && i.Records > 0
	})
	res, err := http.Get(base + "/jobs/" + ackA.JobID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("regenerated result.csv = %d", res.StatusCode)
	}

	// The recovery log line made it to the daemon's output.
	if !strings.Contains(logs.String(), "interrupted") {
		t.Fatalf("no recovery log line; logs:\n%s", logs.String())
	}

	_ = daemon2.Process.Signal(os.Interrupt)
	_ = daemon2.Wait()
}

// putWindowHTTP PUTs one whole window at the daemon.
func putWindowHTTP(t *testing.T, base, dsID string, bucket int64, body string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/datasets/%s/windows/%d", base, dsID, bucket), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestCrashRestartFollowIngest is the continuous-ingest acceptance
// walkthrough against the real daemon: PUT windows stream through a
// follow job as they land, the per-window-key ledger holds ONE
// window's ρ across distinct buckets, kill -9 mid-follow and restart
// RESUMES the job at the next bucket with per-key positions intact
// (spend monotone, and exactly unchanged — re-released buckets do not
// re-charge), the sealed release is byte-identical to batch
// SynthesizeTimeWindows at the same seed, and an epoch-2 re-release
// of one bucket doubles only that key's spend.
func TestCrashRestartFollowIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a daemon subprocess; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "netdpsynd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	stateDir := filepath.Join(tmp, "state")

	// A sorted trace cut into 3 span buckets, rendered per window. The
	// emulator's extra columns are dropped through the canonical flow
	// schema first — the daemon's dataset schema is what both sides
	// must share.
	gen, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 360, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var genCSV bytes.Buffer
	if err := gen.WriteCSV(&genCSV); err != nil {
		t.Fatal(err)
	}
	raw, err := netdpsyn.LoadCSV(&genCSV, netdpsyn.FlowSchema(datagen.LabelField(datagen.TON)))
	if err != nil {
		t.Fatal(err)
	}
	raw = raw.SortBy(raw.Schema().Index(netdpsyn.FieldTS))
	tsCol := raw.Column(raw.Schema().Index(netdpsyn.FieldTS))
	span := (tsCol[len(tsCol)-1]-tsCol[0])/3 + 1
	bucketOf := func(ts int64) int64 { return netdpsyn.TimeBucket(ts, span) }
	type cut struct {
		bucket int64
		body   string
		tab    *netdpsyn.Table
	}
	var cuts []cut
	for lo := 0; lo < raw.NumRows(); {
		b := bucketOf(tsCol[lo])
		hi := lo
		for hi < raw.NumRows() && bucketOf(tsCol[hi]) == b {
			hi++
		}
		part := netdpsyn.NewTable(raw.Schema(), hi-lo)
		if err := part.AppendRowRange(raw, lo, hi); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := part.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		cuts = append(cuts, cut{bucket: b, body: buf.String(), tab: part})
		lo = hi
	}
	if len(cuts) < 3 {
		t.Fatalf("want ≥ 3 buckets, got %d", len(cuts))
	}
	cuts = cuts[:3]

	jobRho, err := netdpsyn.RhoFromEpsDelta(1.0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	base := "http://" + addr
	var logs syncBuffer
	daemon := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon.Process.Kill() }()

	// Register a live feed with a 2.5ρ ceiling: one full release plus
	// one single-bucket re-release fit; a third release does not.
	regURL := fmt.Sprintf("%s/datasets?label=%s&feed=1&span=%d&budget_rho=%g&budget_delta=1e-5",
		base, datagen.LabelField(datagen.TON), span, 2.5*jobRho)
	resp, err := http.Post(regURL, "text/csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !dsInfo.Feed {
		t.Fatalf("feed register = %d (%+v)", resp.StatusCode, dsInfo)
	}

	follow := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 31, Follow: true}
	ack, code := postSynth(t, base, dsInfo.ID, follow)
	if code != http.StatusAccepted || !ack.Follow || ack.Epoch != 1 {
		t.Fatalf("follow submit = %d (%+v)", code, ack)
	}

	// Two windows land pre-crash; each synthesizes as it arrives.
	for i, c := range cuts[:2] {
		if code := putWindowHTTP(t, base, dsInfo.ID, c.bucket, c.body); code != http.StatusCreated {
			t.Fatalf("PUT window %d = %d", c.bucket, code)
		}
		waitJobState(t, base, ack.JobID, 60*time.Second, func(info serve.JobInfo) bool {
			return info.WindowsDone >= i+1
		})
	}
	var budget serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if math.Abs(budget.SpentRho-jobRho) > 1e-12 {
		t.Fatalf("pre-crash spend = %v, want one window's %v (parallel over %d distinct keys)",
			budget.SpentRho, jobRho, 2)
	}

	// kill -9 mid-follow.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	daemon2 := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon2.Process.Kill() }()

	// The follow job RESUMED (not a charged failure): it re-emits the
	// two charged windows at zero new cost and waits for the next
	// bucket. Spend is monotone AND exactly preserved per key.
	waitJobState(t, base, ack.JobID, 60*time.Second, func(info serve.JobInfo) bool {
		return info.State == serve.JobRunning && info.WindowsDone >= 2
	})
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if math.Abs(budget.SpentRho-jobRho) > 1e-12 {
		t.Fatalf("post-restart spend = %v, want %v unchanged (per-key positions intact)", budget.SpentRho, jobRho)
	}
	if len(budget.WindowRho) != 2 {
		t.Fatalf("post-restart window keys = %v, want the 2 pre-crash keys", budget.WindowRho)
	}
	if !strings.Contains(logs.String(), "follow job(s) resumed") {
		t.Fatalf("no resume log line; logs:\n%s", logs.String())
	}

	// The third bucket lands after the restart: the job picks it up.
	if code := putWindowHTTP(t, base, dsInfo.ID, cuts[2].bucket, cuts[2].body); code != http.StatusCreated {
		t.Fatalf("post-restart PUT = %d", code)
	}
	waitJobState(t, base, ack.JobID, 60*time.Second, func(info serve.JobInfo) bool {
		return info.WindowsDone >= 3
	})

	// Seal → done, and the release is byte-identical to the batch
	// time-span path over the assembled trace at the same seed.
	sresp, err := http.Post(base+"/datasets/"+dsInfo.ID+"/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("seal = %d", sresp.StatusCode)
	}
	waitJobState(t, base, ack.JobID, 60*time.Second, func(info serve.JobInfo) bool {
		return info.State == serve.JobDone
	})
	res, err := http.Get(base + "/jobs/" + ack.JobID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result.csv = %d", res.StatusCode)
	}
	syn, err := netdpsyn.New(netdpsyn.Config{Epsilon: 1, Delta: 1e-5, UpdateIterations: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// The released trace is the three PUT windows (the grid may have
	// cut a fourth bucket that never landed), so the batch reference
	// runs over exactly those records.
	assembled := netdpsyn.NewTable(raw.Schema(), raw.NumRows())
	for _, c := range cuts {
		if err := assembled.AppendRowRange(c.tab, 0, c.tab.NumRows()); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	first := true
	if err := syn.SynthesizeTimeWindows(assembled, span, func(wr netdpsyn.WindowResult) error {
		if first {
			first = false
			return wr.Table.WriteCSV(&want)
		}
		return wr.Table.WriteCSVBody(&want)
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		g, w := strings.Split(string(got), "\n"), strings.Split(want.String(), "\n")
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				t.Fatalf("followed release differs from batch SynthesizeTimeWindows at the same seed: %d vs %d lines, first divergence line %d:\n got %q\nwant %q",
					len(g), len(w), i+1, g[i], w[i])
			}
		}
		t.Fatalf("followed release differs from batch SynthesizeTimeWindows at the same seed: %d vs %d lines (prefix identical)", len(g), len(w))
	}

	// Epoch 2: re-PUT one bucket and release it again — only that
	// key's spend doubles.
	if code := putWindowHTTP(t, base, dsInfo.ID, cuts[0].bucket, cuts[0].body); code != http.StatusCreated {
		t.Fatalf("epoch-2 PUT = %d", code)
	}
	follow2 := follow
	follow2.Seed = 32
	ack2, code := postSynth(t, base, dsInfo.ID, follow2)
	if code != http.StatusAccepted || ack2.Epoch != 2 {
		t.Fatalf("epoch-2 follow = %d (%+v)", code, ack2)
	}
	waitJobState(t, base, ack2.JobID, 60*time.Second, func(info serve.JobInfo) bool {
		return info.WindowsDone >= 1
	})
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if math.Abs(budget.SpentRho-2*jobRho) > 1e-12 {
		t.Fatalf("re-release spend = %v, want %v (only the re-released key doubles)", budget.SpentRho, 2*jobRho)
	}
	doubled := 0
	for _, v := range budget.WindowRho {
		if math.Abs(v-2*jobRho) < 1e-12 {
			doubled++
		} else if math.Abs(v-jobRho) > 1e-12 {
			t.Fatalf("unexpected key spend %v in %v", v, budget.WindowRho)
		}
	}
	if doubled != 1 {
		t.Fatalf("%d keys doubled, want exactly 1: %v", doubled, budget.WindowRho)
	}

	_ = daemon2.Process.Signal(os.Interrupt)
	_ = daemon2.Wait()
}

// postEval submits an evaluation of a finished job over plain HTTP.
func postEval(t *testing.T, base, dsID string, req serve.EvaluationRequest) (serve.EvaluationResponse, int) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets/"+dsID+"/evaluate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack serve.EvaluationResponse
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return ack, resp.StatusCode
}

// TestCrashRestartEvaluation is the evaluation leg of the crash
// contract: an admitted raw-touching evaluation is charged at the
// journal before it computes anything, so a SIGKILL while it waits
// behind the single runner must replay it as a charged failure —
// never a refund — while a finished free evaluation's scores survive
// the restart verbatim from the terminal record.
func TestCrashRestartEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a daemon subprocess; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "netdpsynd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	stateDir := filepath.Join(tmp, "state")

	jobRho, err := netdpsyn.RhoFromEpsDelta(1.0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// Job A + job B + one raw evaluation fit (3ρ); a second raw
	// evaluation does not.
	ceiling := 3.5 * jobRho

	addr := freePort(t)
	base := "http://" + addr
	var logs syncBuffer
	daemon := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon.Process.Kill() }()

	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := raw.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	regURL := fmt.Sprintf("%s/datasets?label=%s&budget_rho=%s&budget_delta=1e-5",
		base, datagen.LabelField(datagen.TON), strconv.FormatFloat(ceiling, 'f', -1, 64))
	resp, err := http.Post(regURL, "text/csv", &csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d", resp.StatusCode)
	}

	// Job A: quick release to evaluate.
	reqA := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 3, Seed: 11}
	ackA, code := postSynth(t, base, dsInfo.ID, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("job A = %d", code)
	}
	infoA := waitJobState(t, base, ackA.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone || i.State == serve.JobFailed
	})
	if infoA.State != serve.JobDone {
		t.Fatalf("job A = %s (%s)", infoA.State, infoA.Error)
	}

	// A free release-only evaluation completes pre-crash: ρ = 0, and
	// its scores must survive the restart from the terminal record.
	freeAck, code := postEval(t, base, dsInfo.ID, serve.EvaluationRequest{JobID: ackA.JobID})
	if code != http.StatusAccepted || freeAck.Rho != 0 {
		t.Fatalf("free eval = %d (ρ=%v), want 202 at ρ=0", code, freeAck.Rho)
	}
	freeInfo := waitJobState(t, base, freeAck.JobID, 60*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobDone || i.State == serve.JobFailed
	})
	if freeInfo.State != serve.JobDone || freeInfo.Evaluation == nil || freeInfo.Evaluation.Release.Rows == 0 {
		t.Fatalf("free eval = %s (%s), want done with a release block", freeInfo.State, freeInfo.Error)
	}
	var budget serve.Status
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if math.Abs(budget.SpentRho-jobRho) > 1e-12 {
		t.Fatalf("spend after free eval = %v, want job A's %v untouched", budget.SpentRho, jobRho)
	}

	// Job B: heavy enough to occupy the single runner while the raw
	// evaluation sits admitted-and-charged in the backlog.
	reqB := serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 50000, Seed: 12}
	ackB, code := postSynth(t, base, dsInfo.ID, reqB)
	if code != http.StatusAccepted {
		t.Fatalf("job B = %d", code)
	}
	waitJobState(t, base, ackB.JobID, 30*time.Second, func(i serve.JobInfo) bool {
		return i.State == serve.JobRunning
	})

	// Raw evaluation: charged at admission (journal fsync before the
	// 202), queued behind B.
	evalReq := serve.EvaluationRequest{JobID: ackA.JobID, Metrics: []string{"tvd", "mia"}, Seed: 5}
	evalAck, code := postEval(t, base, dsInfo.ID, evalReq)
	if code != http.StatusAccepted {
		t.Fatalf("raw eval = %d", code)
	}
	if math.Abs(evalAck.Rho-jobRho) > 1e-12 {
		t.Fatalf("raw eval ρ = %v, want %v", evalAck.Rho, jobRho)
	}
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	preCrash := budget.SpentRho
	if math.Abs(preCrash-3*jobRho) > 1e-12 {
		t.Fatalf("pre-crash spend = %v, want %v (A + B + eval)", preCrash, 3*jobRho)
	}

	// kill -9 with the evaluation still queued.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	daemon2 := startDaemon(t, bin, addr, stateDir, &logs)
	defer func() { _ = daemon2.Process.Kill() }()

	// (1) Spend is monotone — the admitted evaluation is never
	// refunded, even though it computed nothing.
	getJSONInto(t, base+"/datasets/"+dsInfo.ID+"/budget", &budget)
	if budget.SpentRho < preCrash-1e-12 {
		t.Fatalf("spend shrank across kill -9: %v < %v", budget.SpentRho, preCrash)
	}

	// (2) The interrupted evaluation replays as a charged failure.
	var evalInfo serve.JobInfo
	if code := getJSONInto(t, base+"/jobs/"+evalAck.JobID, &evalInfo); code != http.StatusOK {
		t.Fatalf("GET interrupted eval = %d", code)
	}
	if evalInfo.Kind != serve.KindEvaluate || evalInfo.TargetJob != ackA.JobID {
		t.Fatalf("restored eval kind=%q target=%q, want evaluate/%s", evalInfo.Kind, evalInfo.TargetJob, ackA.JobID)
	}
	if evalInfo.State != serve.JobFailed || !strings.Contains(evalInfo.Error, "restart") {
		t.Fatalf("interrupted eval = %s (%q), want charged failure mentioning the restart", evalInfo.State, evalInfo.Error)
	}

	// (3) The finished free evaluation's scores came back from the
	// journal, not from recomputation.
	var freeAfter serve.JobInfo
	if code := getJSONInto(t, base+"/jobs/"+freeAck.JobID, &freeAfter); code != http.StatusOK {
		t.Fatalf("GET free eval = %d", code)
	}
	if freeAfter.State != serve.JobDone || freeAfter.Evaluation == nil {
		t.Fatalf("free eval after restart = %s, want done with its evaluation block", freeAfter.State)
	}
	if freeAfter.Evaluation.Release.Rows != freeInfo.Evaluation.Release.Rows {
		t.Fatalf("free eval rows changed across restart: %d → %d",
			freeInfo.Evaluation.Release.Rows, freeAfter.Evaluation.Release.Rows)
	}

	// (4) Another raw evaluation would cross the ceiling: 403.
	if _, code := postEval(t, base, dsInfo.ID, evalReq); code != http.StatusForbidden {
		t.Fatalf("over-ceiling eval after restart = %d, want 403", code)
	}

	// (5) Kind filtering over the recovered state: exactly the two
	// evaluations, newest first.
	var listed []serve.JobInfo
	if code := getJSONInto(t, base+"/jobs?dataset="+dsInfo.ID+"&kind=evaluate", &listed); code != http.StatusOK {
		t.Fatalf("list kind=evaluate = %d", code)
	}
	if len(listed) != 2 {
		t.Fatalf("kind=evaluate listed %d jobs, want 2", len(listed))
	}

	_ = daemon2.Process.Signal(os.Interrupt)
	_ = daemon2.Wait()
}
