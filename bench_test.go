// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index), plus
// ablation benches for the design choices NetDPSyn adds.
//
// Run everything and capture the rendered tables:
//
//	go test -bench=. -benchmem . | tee bench_output.txt
//
// The benches share a memoized Runner so each synthesis happens once;
// grids are emitted through b.Log so the output file records the
// paper-style tables alongside the timings. Scales are reduced (see
// experiments.DefaultScale); EXPERIMENTS.md records paper-vs-measured
// per artifact.
package netdpsyn_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/experiments"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// runner returns the shared, memoized experiment runner.
func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.DefaultScale())
	})
	return benchRunner
}

func BenchmarkFigure2Sketching(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure2(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", grids[ds])
			}
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetDPSyn"), "DC-CMS-NetDPSyn")
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetShare"), "DC-CMS-NetShare")
		}
	}
}

func BenchmarkFigure3Classification(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.FlowDatasets() {
				b.Logf("\n%s", res.Accuracy[ds])
			}
			g := res.Accuracy[datagen.TON]
			b.ReportMetric(g.Get("DT", "Real"), "TON-DT-Real")
			b.ReportMetric(g.Get("DT", "NetDPSyn"), "TON-DT-NetDPSyn")
			b.ReportMetric(g.Get("DT", "NetShare"), "TON-DT-NetShare")
		}
	}
}

func BenchmarkTable1RankCorrelation(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
			b.ReportMetric(res.RankCorr.Get("TON", "NetDPSyn"), "TON-NetDPSyn-rho")
		}
	}
}

func BenchmarkFigure4NetML(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", res.RelErr[ds])
			}
		}
	}
}

func BenchmarkTable2NetMLRank(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
		}
	}
}

func BenchmarkTable3RunningTime(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("TON", "NetDPSyn"), "TON-NetDPSyn-sec")
			b.ReportMetric(g.Get("TON", "PrivMRF"), "TON-PrivMRF-sec")
		}
	}
}

// BenchmarkTable3WorkersSweep complements Table 3 with the staged
// engine's worker sweep: NetDPSyn synthesis across all five datasets
// at 1, 2, and 4 workers. The synthesized tables are byte-identical
// across the sweep (the engine's determinism contract); only the
// wall clock changes. Fresh runners per iteration defeat the
// memoization that Table 3 relies on.
func BenchmarkTable3WorkersSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sc := experiments.DefaultScale()
			sc.Workers = w
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(sc)
				for _, ds := range datagen.Datasets() {
					if _, err := r.Syn("NetDPSyn", ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkStageTimings feeds the staged engine's per-stage wall/busy
// split (Report.Stages, surfaced as Result.Stages on the public API)
// into the benchmark output as metrics, so CI runs can track per-stage
// regressions — GUM planning should dominate (the paper's ~90% claim),
// and a busy/wall ratio near the worker count means a stage actually
// parallelized. Metrics are `<stage>-wall-ms` and `<stage>-busy-ms`,
// averaged over b.N runs.
//
// With BENCH_STAGE_JSON=<path> in the environment, the same metrics
// are also written to <path> as BENCH_stage_timings.json — the bench
// trajectory artifact CI uploads on every push and compares against
// the committed baseline with `go run ./cmd/benchtraj` (soft warn on
// regression). The file embeds the equivalent Go benchmark output
// lines under "benchfmt", so `jq -r '.benchfmt[]'` feeds benchstat.
func BenchmarkStageTimings(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 2000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := netdpsyn.New(netdpsyn.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	wall := make(map[string]time.Duration)
	busy := make(map[string]time.Duration)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := syn.Synthesize(raw)
		if err != nil {
			b.Fatal(err)
		}
		for name, st := range res.Stages {
			wall[name] += st.Wall
			busy[name] += st.Busy
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(b.N)
	}
	for name := range wall {
		b.ReportMetric(ms(wall[name]), name+"-wall-ms")
		b.ReportMetric(ms(busy[name]), name+"-busy-ms")
	}
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		if err := writeStageTimingsJSON(path, "BenchmarkStageTimings", b.N, elapsed, wall, busy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowedThroughput tracks the streaming/windowed path's
// cost alongside the per-stage trajectory: a 4-window synthesis over
// a time-sorted trace through the same incremental engine that
// SynthesizeStream and the netdpsynd windowed job kind use. Reports
// input rows/sec; with BENCH_STAGE_JSON set, merges a "windowed"
// pseudo-stage (per-op wall, summed per-window busy) into the same
// BENCH_stage_timings.json that BenchmarkStageTimings emits, so
// cmd/benchtraj tracks both against one committed baseline.
func BenchmarkWindowedThroughput(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 4000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	raw = raw.SortBy(raw.Schema().Index(netdpsyn.FieldTS))
	syn, err := netdpsyn.New(netdpsyn.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	const windows = 4
	var busy time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := syn.SynthesizeWindows(raw, windows, func(wr netdpsyn.WindowResult) error {
			for _, st := range wr.Stages {
				busy += st.Busy
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	rowsPerSec := float64(raw.NumRows()) * float64(b.N) / elapsed.Seconds()
	b.ReportMetric(rowsPerSec, "rows/sec")
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		wall := map[string]time.Duration{"windowed": elapsed}
		busyM := map[string]time.Duration{"windowed": busy}
		if err := writeStageTimingsJSON(path, "BenchmarkWindowedThroughput", b.N, elapsed, wall, busyM); err != nil {
			b.Fatal(err)
		}
	}
}

// stageTimingsFile is the BENCH_stage_timings.json shape shared with
// cmd/benchtraj: per-stage wall/busy milliseconds averaged over N
// runs, plus the equivalent benchfmt text lines for benchstat.
type stageTimingsFile struct {
	Benchmark string                       `json:"benchmark"`
	Go        string                       `json:"go"`
	GOOS      string                       `json:"goos"`
	GOARCH    string                       `json:"goarch"`
	N         int                          `json:"n"`
	NsPerOp   float64                      `json:"ns_per_op"`
	Stages    map[string]stageTimingsEntry `json:"stages"`
	Benchfmt  []string                     `json:"benchfmt"`
}

type stageTimingsEntry struct {
	WallMS float64 `json:"wall_ms"`
	BusyMS float64 `json:"busy_ms"`
}

// writeStageTimingsJSON merges the given benchmark's stage metrics
// into the bench trajectory artifact: an existing file's stages and
// benchfmt lines are kept (same-named stages overwritten), so
// BenchmarkStageTimings and BenchmarkWindowedThroughput run in one CI
// step and land in one artifact.
func writeStageTimingsJSON(path, bench string, n int, elapsed time.Duration, wall, busy map[string]time.Duration) error {
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(n)
	}
	out := stageTimingsFile{
		Benchmark: bench,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		N:         n,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(n),
		Stages:    make(map[string]stageTimingsEntry, len(wall)),
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old stageTimingsFile
		if json.Unmarshal(prev, &old) == nil {
			for name, e := range old.Stages {
				out.Stages[name] = e
			}
			for _, l := range old.Benchfmt {
				// Re-running the same benchmark replaces its line.
				if !strings.HasPrefix(l, bench+"-") {
					out.Benchfmt = append(out.Benchfmt, l)
				}
			}
		}
	}
	names := make([]string, 0, len(wall))
	for name := range wall {
		names = append(names, name)
		out.Stages[name] = stageTimingsEntry{WallMS: ms(wall[name]), BusyMS: ms(busy[name])}
	}
	sort.Strings(names)
	line := fmt.Sprintf("%s-%d %d %.0f ns/op", bench, runtime.GOMAXPROCS(0), n, out.NsPerOp)
	for _, name := range names {
		line += fmt.Sprintf(" %.3f %s-wall-ms %.3f %s-busy-ms",
			out.Stages[name].WallMS, name, out.Stages[name].BusyMS, name)
	}
	out.Benchfmt = append(out.Benchfmt, line)
	// The file-level name is the union of the benchmarks that wrote it,
	// derived from the lines so re-runs stay deterministic.
	var benches []string
	for _, l := range out.Benchfmt {
		if i := strings.LastIndex(strings.Fields(l)[0], "-"); i > 0 {
			benches = append(benches, strings.Fields(l)[0][:i])
		}
	}
	sort.Strings(benches)
	out.Benchmark = strings.Join(benches, "+")
	raw, err := json.MarshalIndent(&out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func BenchmarkTable4MarginalExample(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", s)
		}
	}
}

func BenchmarkTable5DatasetSummary(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkFigure5AttributeTON(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure6AttributeCAIDA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure7EpsilonSweep(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable6TONEpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable7UGR16EpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkFigure8GUMMIvsGUM(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["GB"])
			b.ReportMetric(grids["DT"].Get("1", "GUMMI"), "DT-1round-GUMMI")
			b.ReportMetric(grids["DT"].Get("1", "GUM"), "DT-1round-GUM")
		}
	}
}

func BenchmarkAppendixGMIA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.AppendixG(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("Raw", "AttackAcc"), "MIA-raw")
			b.ReportMetric(g.Get("NetDPSyn ε=2", "AttackAcc"), "MIA-eps2")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Ablations(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkExtensionCopula(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.CopulaComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("NetDPSyn", "DT"), "DT-NetDPSyn")
			b.ReportMetric(g.Get("Copula", "DT"), "DT-Copula")
		}
	}
}

func BenchmarkExtensionWindowed(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.WindowedComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}
