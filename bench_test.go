// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index), plus
// ablation benches for the design choices NetDPSyn adds.
//
// Run everything and capture the rendered tables:
//
//	go test -bench=. -benchmem . | tee bench_output.txt
//
// The benches share a memoized Runner so each synthesis happens once;
// grids are emitted through b.Log so the output file records the
// paper-style tables alongside the timings. Scales are reduced (see
// experiments.DefaultScale); EXPERIMENTS.md records paper-vs-measured
// per artifact.
package netdpsyn_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/experiments"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// runner returns the shared, memoized experiment runner.
func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.DefaultScale())
	})
	return benchRunner
}

func BenchmarkFigure2Sketching(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure2(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", grids[ds])
			}
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetDPSyn"), "DC-CMS-NetDPSyn")
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetShare"), "DC-CMS-NetShare")
		}
	}
}

func BenchmarkFigure3Classification(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.FlowDatasets() {
				b.Logf("\n%s", res.Accuracy[ds])
			}
			g := res.Accuracy[datagen.TON]
			b.ReportMetric(g.Get("DT", "Real"), "TON-DT-Real")
			b.ReportMetric(g.Get("DT", "NetDPSyn"), "TON-DT-NetDPSyn")
			b.ReportMetric(g.Get("DT", "NetShare"), "TON-DT-NetShare")
		}
	}
}

func BenchmarkTable1RankCorrelation(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
			b.ReportMetric(res.RankCorr.Get("TON", "NetDPSyn"), "TON-NetDPSyn-rho")
		}
	}
}

func BenchmarkFigure4NetML(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", res.RelErr[ds])
			}
		}
	}
}

func BenchmarkTable2NetMLRank(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
		}
	}
}

func BenchmarkTable3RunningTime(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("TON", "NetDPSyn"), "TON-NetDPSyn-sec")
			b.ReportMetric(g.Get("TON", "PrivMRF"), "TON-PrivMRF-sec")
		}
	}
}

// BenchmarkTable3WorkersSweep complements Table 3 with the staged
// engine's worker sweep: NetDPSyn synthesis across all five datasets
// at 1, 2, and 4 workers. The synthesized tables are byte-identical
// across the sweep (the engine's determinism contract); only the
// wall clock changes. Fresh runners per iteration defeat the
// memoization that Table 3 relies on.
func BenchmarkTable3WorkersSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sc := experiments.DefaultScale()
			sc.Workers = w
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(sc)
				for _, ds := range datagen.Datasets() {
					if _, err := r.Syn("NetDPSyn", ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkStageTimings feeds the staged engine's per-stage wall/busy
// split (Report.Stages, surfaced as Result.Stages on the public API)
// into the benchmark output as metrics, so CI runs can track per-stage
// regressions — GUM planning should dominate (the paper's ~90% claim),
// and a busy/wall ratio near the worker count means a stage actually
// parallelized. Metrics are `<stage>-wall-ms` and `<stage>-busy-ms`,
// averaged over b.N runs.
//
// With BENCH_STAGE_JSON=<path> in the environment, the same metrics
// are also written to <path> as BENCH_stage_timings.json — the bench
// trajectory artifact CI uploads on every push and compares against
// the committed baseline with `go run ./cmd/benchtraj` (soft warn on
// regression). The file embeds the equivalent Go benchmark output
// lines under "benchfmt", so `jq -r '.benchfmt[]'` feeds benchstat.
func BenchmarkStageTimings(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 2000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := netdpsyn.New(netdpsyn.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	wall := make(map[string]time.Duration)
	busy := make(map[string]time.Duration)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := syn.Synthesize(raw)
		if err != nil {
			b.Fatal(err)
		}
		for name, st := range res.Stages {
			wall[name] += st.Wall
			busy[name] += st.Busy
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(b.N)
	}
	for name := range wall {
		b.ReportMetric(ms(wall[name]), name+"-wall-ms")
		b.ReportMetric(ms(busy[name]), name+"-busy-ms")
	}
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		if err := writeStageTimingsJSON(path, b.N, elapsed, wall, busy); err != nil {
			b.Fatal(err)
		}
	}
}

// stageTimingsFile is the BENCH_stage_timings.json shape shared with
// cmd/benchtraj: per-stage wall/busy milliseconds averaged over N
// runs, plus the equivalent benchfmt text lines for benchstat.
type stageTimingsFile struct {
	Benchmark string                       `json:"benchmark"`
	Go        string                       `json:"go"`
	GOOS      string                       `json:"goos"`
	GOARCH    string                       `json:"goarch"`
	N         int                          `json:"n"`
	NsPerOp   float64                      `json:"ns_per_op"`
	Stages    map[string]stageTimingsEntry `json:"stages"`
	Benchfmt  []string                     `json:"benchfmt"`
}

type stageTimingsEntry struct {
	WallMS float64 `json:"wall_ms"`
	BusyMS float64 `json:"busy_ms"`
}

// writeStageTimingsJSON renders the stage metrics as the bench
// trajectory artifact.
func writeStageTimingsJSON(path string, n int, elapsed time.Duration, wall, busy map[string]time.Duration) error {
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(n)
	}
	out := stageTimingsFile{
		Benchmark: "BenchmarkStageTimings",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		N:         n,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(n),
		Stages:    make(map[string]stageTimingsEntry, len(wall)),
	}
	names := make([]string, 0, len(wall))
	for name := range wall {
		names = append(names, name)
		out.Stages[name] = stageTimingsEntry{WallMS: ms(wall[name]), BusyMS: ms(busy[name])}
	}
	sort.Strings(names)
	line := fmt.Sprintf("BenchmarkStageTimings-%d %d %.0f ns/op", runtime.GOMAXPROCS(0), n, out.NsPerOp)
	for _, name := range names {
		line += fmt.Sprintf(" %.3f %s-wall-ms %.3f %s-busy-ms",
			out.Stages[name].WallMS, name, out.Stages[name].BusyMS, name)
	}
	out.Benchfmt = []string{line}
	raw, err := json.MarshalIndent(&out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func BenchmarkTable4MarginalExample(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", s)
		}
	}
}

func BenchmarkTable5DatasetSummary(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkFigure5AttributeTON(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure6AttributeCAIDA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure7EpsilonSweep(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable6TONEpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable7UGR16EpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkFigure8GUMMIvsGUM(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["GB"])
			b.ReportMetric(grids["DT"].Get("1", "GUMMI"), "DT-1round-GUMMI")
			b.ReportMetric(grids["DT"].Get("1", "GUM"), "DT-1round-GUM")
		}
	}
}

func BenchmarkAppendixGMIA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.AppendixG(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("Raw", "AttackAcc"), "MIA-raw")
			b.ReportMetric(g.Get("NetDPSyn ε=2", "AttackAcc"), "MIA-eps2")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Ablations(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkExtensionCopula(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.CopulaComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("NetDPSyn", "DT"), "DT-NetDPSyn")
			b.ReportMetric(g.Get("Copula", "DT"), "DT-Copula")
		}
	}
}

func BenchmarkExtensionWindowed(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.WindowedComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}
