// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index), plus
// ablation benches for the design choices NetDPSyn adds.
//
// Run everything and capture the rendered tables:
//
//	go test -bench=. -benchmem . | tee bench_output.txt
//
// The benches share a memoized Runner so each synthesis happens once;
// grids are emitted through b.Log so the output file records the
// paper-style tables alongside the timings. Scales are reduced (see
// experiments.DefaultScale); EXPERIMENTS.md records paper-vs-measured
// per artifact.
package netdpsyn_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/core/kernels"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/dataset"
	"github.com/netdpsyn/netdpsyn/internal/experiments"
	"github.com/netdpsyn/netdpsyn/internal/serve"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// runner returns the shared, memoized experiment runner.
func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.DefaultScale())
	})
	return benchRunner
}

func BenchmarkFigure2Sketching(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure2(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", grids[ds])
			}
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetDPSyn"), "DC-CMS-NetDPSyn")
			b.ReportMetric(grids[datagen.DC].Get("CMS", "NetShare"), "DC-CMS-NetShare")
		}
	}
}

func BenchmarkFigure3Classification(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.FlowDatasets() {
				b.Logf("\n%s", res.Accuracy[ds])
			}
			g := res.Accuracy[datagen.TON]
			b.ReportMetric(g.Get("DT", "Real"), "TON-DT-Real")
			b.ReportMetric(g.Get("DT", "NetDPSyn"), "TON-DT-NetDPSyn")
			b.ReportMetric(g.Get("DT", "NetShare"), "TON-DT-NetShare")
		}
	}
}

func BenchmarkTable1RankCorrelation(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
			b.ReportMetric(res.RankCorr.Get("TON", "NetDPSyn"), "TON-NetDPSyn-rho")
		}
	}
}

func BenchmarkFigure4NetML(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range datagen.PacketDatasets() {
				b.Logf("\n%s", res.RelErr[ds])
			}
		}
	}
}

func BenchmarkTable2NetMLRank(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.RankCorr)
		}
	}
}

func BenchmarkTable3RunningTime(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table3(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("TON", "NetDPSyn"), "TON-NetDPSyn-sec")
			b.ReportMetric(g.Get("TON", "PrivMRF"), "TON-PrivMRF-sec")
		}
	}
}

// BenchmarkTable3WorkersSweep complements Table 3 with the staged
// engine's worker sweep: NetDPSyn synthesis across all five datasets
// at 1, 2, and 4 workers. The synthesized tables are byte-identical
// across the sweep (the engine's determinism contract); only the
// wall clock changes. Fresh runners per iteration defeat the
// memoization that Table 3 relies on.
func BenchmarkTable3WorkersSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sc := experiments.DefaultScale()
			sc.Workers = w
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(sc)
				for _, ds := range datagen.Datasets() {
					if _, err := r.Syn("NetDPSyn", ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkStageTimings feeds the staged engine's per-stage wall/busy
// split (Report.Stages, surfaced as Result.Stages on the public API)
// into the benchmark output as metrics, so CI runs can track per-stage
// regressions — GUM planning should dominate (the paper's ~90% claim),
// and a busy/wall ratio near the worker count means a stage actually
// parallelized. Metrics are `<stage>-wall-ms` and `<stage>-busy-ms`,
// averaged over b.N runs.
//
// With BENCH_STAGE_JSON=<path> in the environment, the same metrics
// are also written to <path> as BENCH_stage_timings.json — the bench
// trajectory artifact CI uploads on every push and compares against
// the committed baseline with `go run ./cmd/benchtraj` (soft warn on
// regression). The file embeds the equivalent Go benchmark output
// lines under "benchfmt", so `jq -r '.benchfmt[]'` feeds benchstat.
func BenchmarkStageTimings(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 2000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := netdpsyn.New(netdpsyn.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	wall := make(map[string]time.Duration)
	busy := make(map[string]time.Duration)
	b.ReportAllocs()
	mem := newMemMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := syn.Synthesize(raw)
		if err != nil {
			b.Fatal(err)
		}
		for name, st := range res.Stages {
			wall[name] += st.Wall
			busy[name] += st.Busy
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(b.N)
	}
	for name := range wall {
		b.ReportMetric(ms(wall[name]), name+"-wall-ms")
		b.ReportMetric(ms(busy[name]), name+"-busy-ms")
	}
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		if err := writeStageTimingsJSON(path, "BenchmarkStageTimings", b.N, elapsed, wall, busy, mem.perOp(b.N)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowedThroughput tracks the streaming/windowed path's
// cost alongside the per-stage trajectory: a 4-window synthesis over
// a time-sorted trace through the same incremental engine that
// SynthesizeStream and the netdpsynd windowed job kind use. Reports
// input rows/sec; with BENCH_STAGE_JSON set, merges a "windowed"
// pseudo-stage (per-op wall, summed per-window busy) into the same
// BENCH_stage_timings.json that BenchmarkStageTimings emits, so
// cmd/benchtraj tracks both against one committed baseline.
func BenchmarkWindowedThroughput(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 4000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	raw = raw.SortBy(raw.Schema().Index(netdpsyn.FieldTS))
	syn, err := netdpsyn.New(netdpsyn.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	const windows = 4
	var busy time.Duration
	b.ReportAllocs()
	mem := newMemMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := syn.SynthesizeWindows(raw, windows, func(wr netdpsyn.WindowResult) error {
			for _, st := range wr.Stages {
				busy += st.Busy
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	rowsPerSec := float64(raw.NumRows()) * float64(b.N) / elapsed.Seconds()
	b.ReportMetric(rowsPerSec, "rows/sec")
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		wall := map[string]time.Duration{"windowed": elapsed}
		busyM := map[string]time.Duration{"windowed": busy}
		if err := writeStageTimingsJSON(path, "BenchmarkWindowedThroughput", b.N, elapsed, wall, busyM, mem.perOp(b.N)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowIngest measures the continuous-ingest hot path
// end to end over the real HTTP service: each iteration PUTs one
// whole window at a live-feed dataset and waits until the follow job
// reports it synthesized — so ns/op is the PUT→synthesized-window
// latency, and rows/sec the sustained follow throughput. With
// BENCH_STAGE_JSON set, merges a "follow" stage (per-window wall,
// summed pipeline busy) into the same BENCH_stage_timings.json that
// BenchmarkStageTimings and BenchmarkWindowedThroughput emit, so
// cmd/benchtraj tracks all three against one committed baseline.
func BenchmarkFollowIngest(b *testing.B) {
	const (
		span       = int64(1_000)
		windowRows = 300
	)
	gen, err := datagen.Generate(datagen.TON, datagen.Config{Rows: windowRows, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var genCSV bytes.Buffer
	if err := gen.WriteCSV(&genCSV); err != nil {
		b.Fatal(err)
	}
	schema := netdpsyn.FlowSchema(datagen.LabelField(datagen.TON))
	template, err := netdpsyn.LoadCSV(&genCSV, schema)
	if err != nil {
		b.Fatal(err)
	}
	tsIdx := schema.Index(netdpsyn.FieldTS)
	// windowCSV renders the template shifted into bucket i: distinct
	// buckets per iteration, time-ordered rows within each.
	windowCSV := func(i int) string {
		w := netdpsyn.NewTable(schema, template.NumRows())
		if err := w.AppendRowRange(template, 0, template.NumRows()); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < w.NumRows(); r++ {
			w.SetValue(r, tsIdx, int64(i)*span+int64(r)*span/int64(w.NumRows()))
		}
		var buf bytes.Buffer
		if err := w.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		return buf.String()
	}

	srv, err := serve.NewServer(serve.Options{MaxConcurrentJobs: 1, AllowVolatileFeed: true})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	regURL := fmt.Sprintf("%s/datasets?label=%s&feed=1&span=%d&budget_rho=1e9", ts.URL, datagen.LabelField(datagen.TON), span)
	resp, err := ts.Client().Post(regURL, "text/csv", nil)
	if err != nil {
		b.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	body, err := json.Marshal(serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 4, Seed: 9, Follow: true})
	if err != nil {
		b.Fatal(err)
	}
	sresp, err := ts.Client().Post(ts.URL+"/datasets/"+dsInfo.ID+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var ack serve.SynthesisResponse
	if err := json.NewDecoder(sresp.Body).Decode(&ack); err != nil {
		b.Fatal(err)
	}
	sresp.Body.Close()

	windowsDone := func() int {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + ack.JobID)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var info serve.JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			b.Fatal(err)
		}
		if info.State == serve.JobFailed {
			b.Fatalf("follow job failed: %s", info.Error)
		}
		return info.WindowsDone
	}

	b.ReportAllocs()
	mem := newMemMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/datasets/%s/windows/%d", ts.URL, dsInfo.ID, i), strings.NewReader(windowCSV(i)))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("PUT window %d = %d", i, resp.StatusCode)
		}
		for windowsDone() < i+1 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	memOp := mem.perOp(b.N) // before the seal below allocates more
	b.ReportMetric(float64(windowRows)*float64(b.N)/elapsed.Seconds(), "rows/sec")

	// Seal so the job finishes and reports its summed pipeline stages
	// — the "follow" stage's busy time.
	fresp, err := ts.Client().Post(ts.URL+"/datasets/"+dsInfo.ID+"/seal", "application/json", nil)
	if err != nil {
		b.Fatal(err)
	}
	fresp.Body.Close()
	j, err := srv.WaitJob(ack.JobID, 60*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	var busy time.Duration
	for _, st := range j.Snapshot().Stages {
		busy += time.Duration(st.BusyMS * float64(time.Millisecond))
	}
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		wall := map[string]time.Duration{"follow": elapsed}
		busyM := map[string]time.Duration{"follow": busy}
		if err := writeStageTimingsJSON(path, "BenchmarkFollowIngest", b.N, elapsed, wall, busyM, memOp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestDecode isolates the decode half of the data plane:
// one TON trace rendered to CSV bytes once, decoded per op through
// the streaming CSV path. Two arms share the input — "fast" is the
// byte-scanning decoder default builds ship (pinned explicitly, so
// the comparison is meaningful under -tags purego too), "reference"
// is the encoding/csv path it replaced — so the ratio between them is
// the data-plane speedup, measured not asserted. Reports rows/sec;
// with BENCH_STAGE_JSON set, the fast arm merges an "ingest-decode"
// stage into the trajectory artifact (the pipeline's own "decode"
// stage — reading an already-loaded table's encoded form — keeps its
// key).
func BenchmarkIngestDecode(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 20_000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := raw.WriteCSV(&csvBuf); err != nil {
		b.Fatal(err)
	}
	data := csvBuf.Bytes()
	schema := raw.Schema()
	rows := raw.NumRows()

	arm := func(b *testing.B, stage string, mk func(*bytes.Reader) (*dataset.CSVStream, error)) {
		b.ReportAllocs()
		mem := newMemMeter()
		rd := bytes.NewReader(data)
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(data)
			s, err := mk(rd)
			if err != nil {
				b.Fatal(err)
			}
			tab := dataset.NewTable(schema, 0)
			for {
				tab.Reset()
				if err := s.NextInto(tab); err != nil {
					break
				}
			}
			if s.Rows() != rows {
				b.Fatalf("decoded %d rows, want %d", s.Rows(), rows)
			}
		}
		b.StopTimer()
		elapsed := b.Elapsed()
		memOp := mem.perOp(b.N)
		b.ReportMetric(float64(rows)*float64(b.N)/elapsed.Seconds(), "rows/sec")
		if path := os.Getenv("BENCH_STAGE_JSON"); stage != "" && path != "" {
			wall := map[string]time.Duration{stage: elapsed}
			busy := map[string]time.Duration{stage: elapsed}
			if err := writeStageTimingsJSON(path, "BenchmarkIngestDecode", b.N, elapsed, wall, busy, memOp); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("fast", func(b *testing.B) {
		arm(b, "ingest-decode", func(rd *bytes.Reader) (*dataset.CSVStream, error) {
			return dataset.NewFastCSVStream(rd, schema, 0)
		})
	})
	b.Run("reference", func(b *testing.B) {
		arm(b, "", func(rd *bytes.Reader) (*dataset.CSVStream, error) {
			return dataset.NewReferenceCSVStream(rd, schema, 0)
		})
	})
}

// BenchmarkResultEncode isolates the encode half: one synthetic-shape
// table rendered to CSV per op through WriteCSV — the exact call the
// result spool writers, the windowed result.csv streamer, and the CLI
// emit loop share. Reports rows/sec; with BENCH_STAGE_JSON set,
// merges a "result-encode" stage into the trajectory artifact.
func BenchmarkResultEncode(b *testing.B) {
	raw, err := datagen.Generate(datagen.TON, datagen.Config{Rows: 20_000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var size int64
	{
		var probe bytes.Buffer
		if err := raw.WriteCSV(&probe); err != nil {
			b.Fatal(err)
		}
		size = int64(probe.Len())
	}
	b.ReportAllocs()
	mem := newMemMeter()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := raw.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	memOp := mem.perOp(b.N)
	b.ReportMetric(float64(raw.NumRows())*float64(b.N)/elapsed.Seconds(), "rows/sec")
	if path := os.Getenv("BENCH_STAGE_JSON"); path != "" {
		wall := map[string]time.Duration{"result-encode": elapsed}
		busy := map[string]time.Duration{"result-encode": elapsed}
		if err := writeStageTimingsJSON(path, "BenchmarkResultEncode", b.N, elapsed, wall, busy, memOp); err != nil {
			b.Fatal(err)
		}
	}
}

// memMeter measures a benchmark loop's heap traffic so allocs/op can
// land in the trajectory artifact: snapshot at construction (just
// before ResetTimer), read the deltas at perOp (just after
// StopTimer). testing's own -benchmem counters aren't readable from
// inside the benchmark, so this mirrors them with ReadMemStats.
type memMeter struct {
	start runtime.MemStats
}

// memPerOp is one benchmark's per-op heap traffic.
type memPerOp struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func newMemMeter() *memMeter {
	m := &memMeter{}
	runtime.ReadMemStats(&m.start)
	return m
}

// perOp reads the deltas since construction, averaged over n ops.
func (m *memMeter) perOp(n int) memPerOp {
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	return memPerOp{
		AllocsPerOp: float64(end.Mallocs-m.start.Mallocs) / float64(n),
		BytesPerOp:  float64(end.TotalAlloc-m.start.TotalAlloc) / float64(n),
	}
}

// stageTimingsFile is the BENCH_stage_timings.json shape shared with
// cmd/benchtraj: per-stage wall/busy milliseconds averaged over N
// runs, per-benchmark heap traffic, plus the equivalent benchfmt text
// lines for benchstat.
type stageTimingsFile struct {
	Benchmark string                       `json:"benchmark"`
	Go        string                       `json:"go"`
	GOOS      string                       `json:"goos"`
	GOARCH    string                       `json:"goarch"`
	Kernel    *kernelMeta                  `json:"kernel,omitempty"`
	N         int                          `json:"n"`
	NsPerOp   float64                      `json:"ns_per_op"`
	Stages    map[string]stageTimingsEntry `json:"stages"`
	Mem       map[string]memPerOp          `json:"mem,omitempty"`
	Benchfmt  []string                     `json:"benchfmt"`
}

// kernelMeta stamps the compute substrate the numbers were measured
// on: the compiled kernel variant (optimized vs purego), whether GUM
// ran its float32 dense-cell arena (benches always use the default
// float64), and the instruction-set baseline. cmd/benchtraj refuses
// to compare trajectories across different substrates — a purego run
// regressing against an optimized baseline is a build-matrix mixup,
// not a performance regression.
type kernelMeta struct {
	Variant string `json:"variant"`
	Cells32 bool   `json:"cells32"`
	GOARCH  string `json:"goarch"`
	GOAMD64 string `json:"goamd64,omitempty"`
}

// benchKernelMeta describes this test binary's substrate.
func benchKernelMeta() *kernelMeta {
	m := &kernelMeta{Variant: kernels.Variant(), GOARCH: runtime.GOARCH}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				m.GOAMD64 = s.Value
			}
		}
	}
	return m
}

type stageTimingsEntry struct {
	WallMS float64 `json:"wall_ms"`
	BusyMS float64 `json:"busy_ms"`
}

// writeStageTimingsJSON merges the given benchmark's stage metrics
// into the bench trajectory artifact: an existing file's stages, mem
// entries, and benchfmt lines are kept (same-named entries
// overwritten), so BenchmarkStageTimings, BenchmarkWindowedThroughput
// and BenchmarkFollowIngest run in one CI step and land in one
// artifact.
func writeStageTimingsJSON(path, bench string, n int, elapsed time.Duration, wall, busy map[string]time.Duration, mem memPerOp) error {
	ms := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1e3 / float64(n)
	}
	out := stageTimingsFile{
		Benchmark: bench,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Kernel:    benchKernelMeta(),
		N:         n,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(n),
		Stages:    make(map[string]stageTimingsEntry, len(wall)),
		Mem:       map[string]memPerOp{bench: mem},
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old stageTimingsFile
		if json.Unmarshal(prev, &old) == nil {
			for name, e := range old.Stages {
				out.Stages[name] = e
			}
			for name, e := range old.Mem {
				if name != bench {
					out.Mem[name] = e
				}
			}
			for _, l := range old.Benchfmt {
				// Re-running the same benchmark replaces its line.
				if !strings.HasPrefix(l, bench+"-") {
					out.Benchfmt = append(out.Benchfmt, l)
				}
			}
		}
	}
	names := make([]string, 0, len(wall))
	for name := range wall {
		names = append(names, name)
		out.Stages[name] = stageTimingsEntry{WallMS: ms(wall[name]), BusyMS: ms(busy[name])}
	}
	sort.Strings(names)
	line := fmt.Sprintf("%s-%d %d %.0f ns/op %.0f B/op %.0f allocs/op",
		bench, runtime.GOMAXPROCS(0), n, out.NsPerOp, mem.BytesPerOp, mem.AllocsPerOp)
	for _, name := range names {
		line += fmt.Sprintf(" %.3f %s-wall-ms %.3f %s-busy-ms",
			out.Stages[name].WallMS, name, out.Stages[name].BusyMS, name)
	}
	out.Benchfmt = append(out.Benchfmt, line)
	// The file-level name is the union of the benchmarks that wrote it,
	// derived from the lines so re-runs stay deterministic.
	var benches []string
	for _, l := range out.Benchfmt {
		if i := strings.LastIndex(strings.Fields(l)[0], "-"); i > 0 {
			benches = append(benches, strings.Fields(l)[0][:i])
		}
	}
	sort.Strings(benches)
	out.Benchmark = strings.Join(benches, "+")
	raw, err := json.MarshalIndent(&out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func BenchmarkTable4MarginalExample(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table4(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", s)
		}
	}
}

func BenchmarkTable5DatasetSummary(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Table5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkFigure5AttributeTON(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure6AttributeCAIDA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", res.JSD, res.EMD)
		}
	}
}

func BenchmarkFigure7EpsilonSweep(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable6TONEpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table6(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkTable7UGR16EpsilonRange(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Table7(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["RF"])
		}
	}
}

func BenchmarkFigure8GUMMIvsGUM(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		grids, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", grids["DT"], grids["GB"])
			b.ReportMetric(grids["DT"].Get("1", "GUMMI"), "DT-1round-GUMMI")
			b.ReportMetric(grids["DT"].Get("1", "GUM"), "DT-1round-GUM")
		}
	}
}

func BenchmarkAppendixGMIA(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.AppendixG(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("Raw", "AttackAcc"), "MIA-raw")
			b.ReportMetric(g.Get("NetDPSyn ε=2", "AttackAcc"), "MIA-eps2")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Ablations(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

func BenchmarkExtensionCopula(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.CopulaComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
			b.ReportMetric(g.Get("NetDPSyn", "DT"), "DT-NetDPSyn")
			b.ReportMetric(g.Get("Copula", "DT"), "DT-Copula")
		}
	}
}

func BenchmarkExtensionWindowed(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		g, err := experiments.WindowedComparison(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g)
		}
	}
}

// BenchmarkEvaluationQuality drives evaluation-as-a-service end to end
// over the real HTTP service: register a deterministic emulated TON
// trace, synthesize one release, then score it per iteration with
// every charged metric (marginal TVD + downstream ML + MIA) — an
// evaluation is never cached, so ns/op is the full raw-pass scoring
// latency. All seeds are pinned, so the scores themselves are
// bit-reproducible; with BENCH_QUALITY_JSON=<path> in the environment
// they land in the quality artifact that cmd/benchtraj -quality gates
// against bench/BENCH_quality.baseline.json.
func BenchmarkEvaluationQuality(b *testing.B) {
	const rows = 400
	gen, err := datagen.Generate(datagen.TON, datagen.Config{Rows: rows, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := gen.WriteCSV(&csvBuf); err != nil {
		b.Fatal(err)
	}

	srv, err := serve.NewServer(serve.Options{MaxConcurrentJobs: 1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	regURL := fmt.Sprintf("%s/datasets?label=%s&budget_rho=1e9", ts.URL, datagen.LabelField(datagen.TON))
	resp, err := ts.Client().Post(regURL, "text/csv", &csvBuf)
	if err != nil {
		b.Fatal(err)
	}
	var dsInfo serve.Info
	if err := json.NewDecoder(resp.Body).Decode(&dsInfo); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("register = %d", resp.StatusCode)
	}

	body, err := json.Marshal(serve.SynthesisRequest{Epsilon: 1, Delta: 1e-5, Iterations: 4, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sresp, err := ts.Client().Post(ts.URL+"/datasets/"+dsInfo.ID+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var ack serve.SynthesisResponse
	if err := json.NewDecoder(sresp.Body).Decode(&ack); err != nil {
		b.Fatal(err)
	}
	sresp.Body.Close()
	if _, err := srv.WaitJob(ack.JobID, 60*time.Second); err != nil {
		b.Fatal(err)
	}

	evalBody, err := json.Marshal(serve.EvaluationRequest{
		JobID:   ack.JobID,
		Metrics: []string{"tvd", "ml", "mia"},
		Models:  []string{"DT", "LR"},
		Seed:    5,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	mem := newMemMeter()
	var last *serve.EvaluationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eresp, err := ts.Client().Post(ts.URL+"/datasets/"+dsInfo.ID+"/evaluate", "application/json", bytes.NewReader(evalBody))
		if err != nil {
			b.Fatal(err)
		}
		var eack serve.EvaluationResponse
		if err := json.NewDecoder(eresp.Body).Decode(&eack); err != nil {
			b.Fatal(err)
		}
		eresp.Body.Close()
		if eresp.StatusCode != http.StatusAccepted {
			b.Fatalf("evaluate = %d", eresp.StatusCode)
		}
		j, err := srv.WaitJob(eack.JobID, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		info := j.Snapshot()
		if info.State != serve.JobDone || info.Evaluation == nil {
			b.Fatalf("evaluation = %s (%s)", info.State, info.Error)
		}
		last = info.Evaluation
	}
	b.StopTimer()
	memOp := mem.perOp(b.N)
	b.ReportMetric(last.Fidelity.MeanTVD, "tvd-mean")
	b.ReportMetric(last.ML["DT"].SynthAccuracy, "dt-acc")

	if path := os.Getenv("BENCH_QUALITY_JSON"); path != "" {
		if err := writeQualityJSON(path, rows, 5, last, memOp); err != nil {
			b.Fatal(err)
		}
	}
}

// qualityFile is the BENCH_quality.json shape shared with
// cmd/benchtraj -quality: the deterministic-seed evaluation scores of
// one synthesized release, gated in CI against a committed baseline.
type qualityFile struct {
	Benchmark    string             `json:"benchmark"`
	Go           string             `json:"go"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	Rows         int                `json:"rows"`
	Seed         uint64             `json:"seed"`
	TVDMean      float64            `json:"tvd_mean"`
	MLAccuracy   map[string]float64 `json:"ml_accuracy"`
	RealAccuracy map[string]float64 `json:"real_accuracy"`
	MIAAdvantage map[string]float64 `json:"mia_advantage"`
	Mem          memPerOp           `json:"mem"`
}

// writeQualityJSON renders one evaluation's scores as the quality
// trajectory artifact.
func writeQualityJSON(path string, rows int, seed uint64, res *serve.EvaluationResult, mem memPerOp) error {
	out := qualityFile{
		Benchmark:    "BenchmarkEvaluationQuality",
		Go:           runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		Rows:         rows,
		Seed:         seed,
		TVDMean:      res.Fidelity.MeanTVD,
		MLAccuracy:   map[string]float64{},
		RealAccuracy: map[string]float64{},
		MIAAdvantage: map[string]float64{},
		Mem:          mem,
	}
	for model, sc := range res.ML {
		out.MLAccuracy[model] = sc.SynthAccuracy
		out.RealAccuracy[model] = sc.RealAccuracy
	}
	for model, sc := range res.MIA {
		out.MIAAdvantage[model] = sc.Advantage
	}
	raw, err := json.MarshalIndent(&out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
