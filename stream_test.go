package netdpsyn_test

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	netdpsyn "github.com/netdpsyn/netdpsyn"
	"github.com/netdpsyn/netdpsyn/internal/datagen"
	"github.com/netdpsyn/netdpsyn/internal/trace"
)

// sortedTraceCSV renders a time-ordered emulated trace as CSV.
func sortedTraceCSV(t *testing.T, rows int) (string, *netdpsyn.Schema) {
	t.Helper()
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: rows, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	raw = raw.SortBy(raw.Schema().Index(trace.FieldTS))
	var buf bytes.Buffer
	if err := raw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), netdpsyn.FlowSchema("label")
}

func identicalTables(t *testing.T, what string, a, b *netdpsyn.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", what, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < a.NumCols(); c++ {
		cat := a.Schema().Fields[c].Kind == netdpsyn.KindCategorical
		for r := 0; r < a.NumRows(); r++ {
			if cat {
				if a.CatValue(c, a.Value(r, c)) != b.CatValue(c, b.Value(r, c)) {
					t.Fatalf("%s: categorical mismatch at row %d col %d", what, r, c)
				}
			} else if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("%s: row %d col %d: %d vs %d", what, r, c, a.Value(r, c), b.Value(r, c))
			}
		}
	}
}

// TestStreamEquivalence is the public-API streaming contract: fixed
// seed + fixed window count ⇒ SynthesizeStream over the CSV is
// byte-identical, window for window, to SynthesizeWindows on the
// pre-loaded table.
func TestStreamEquivalence(t *testing.T) {
	body, schema := sortedTraceCSV(t, 1400)
	table, err := netdpsyn.LoadCSV(strings.NewReader(body), schema)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netdpsyn.Config{Epsilon: 1.0, UpdateIterations: 4, Seed: 17, Workers: 2}
	syn, err := netdpsyn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const windows = 4

	var batch []netdpsyn.WindowResult
	if err := syn.SynthesizeWindows(table, windows, func(wr netdpsyn.WindowResult) error {
		batch = append(batch, wr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var streamed []netdpsyn.WindowResult
	err = netdpsyn.SynthesizeStream(strings.NewReader(body), schema, cfg,
		netdpsyn.StreamOptions{Windows: windows, TotalRows: table.NumRows(), BatchRows: 300},
		func(wr netdpsyn.WindowResult) error {
			streamed = append(streamed, wr)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if len(batch) != windows || len(streamed) != windows {
		t.Fatalf("windows: batch %d, streamed %d, want %d", len(batch), len(streamed), windows)
	}
	for i := range batch {
		if batch[i].Window != streamed[i].Window || batch[i].Records != streamed[i].Records {
			t.Fatalf("window %d: (%d, %d records) vs (%d, %d records)",
				i, batch[i].Window, batch[i].Records, streamed[i].Window, streamed[i].Records)
		}
		if batch[i].Rho != streamed[i].Rho {
			t.Fatalf("window %d: ρ %v vs %v", i, batch[i].Rho, streamed[i].Rho)
		}
		identicalTables(t, fmt.Sprintf("window %d", i), batch[i].Table, streamed[i].Table)
	}
}

// TestTimeWindowStreamEquivalence is the same contract for fixed
// time-span windows — the mode whose combined release is record-level
// (ε, δ)-DP by parallel composition: SynthesizeStream with WindowSpan
// is byte-identical, window for window, to SynthesizeTimeWindows on
// the pre-loaded table.
func TestTimeWindowStreamEquivalence(t *testing.T) {
	body, schema := sortedTraceCSV(t, 1400)
	table, err := netdpsyn.LoadCSV(strings.NewReader(body), schema)
	if err != nil {
		t.Fatal(err)
	}
	col := table.Column(table.Schema().Index(trace.FieldTS))
	span := (col[len(col)-1]-col[0])/4 + 1
	cfg := netdpsyn.Config{Epsilon: 1.0, UpdateIterations: 4, Seed: 17, Workers: 2}
	syn, err := netdpsyn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var batch []netdpsyn.WindowResult
	if err := syn.SynthesizeTimeWindows(table, span, func(wr netdpsyn.WindowResult) error {
		batch = append(batch, wr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var streamed []netdpsyn.WindowResult
	err = netdpsyn.SynthesizeStream(strings.NewReader(body), schema, cfg,
		netdpsyn.StreamOptions{WindowSpan: span, BatchRows: 300},
		func(wr netdpsyn.WindowResult) error {
			streamed = append(streamed, wr)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	if len(batch) < 2 {
		t.Fatalf("span %d cut only %d windows — want several", span, len(batch))
	}
	if len(batch) != len(streamed) {
		t.Fatalf("windows: batch %d, streamed %d", len(batch), len(streamed))
	}
	for i := range batch {
		if batch[i].Window != streamed[i].Window || batch[i].Records != streamed[i].Records {
			t.Fatalf("window %d: (%d, %d records) vs (%d, %d records)",
				i, batch[i].Window, batch[i].Records, streamed[i].Window, streamed[i].Records)
		}
		identicalTables(t, fmt.Sprintf("time window %d", i), batch[i].Table, streamed[i].Table)
	}
}

// TestLiveFeedEquivalence is the continuous-ingest contract on the
// public API: the same buckets published in time order into a live
// WindowFeed — while SynthesizeSource is already running and blocking
// on the feed — produce output byte-identical, window for window, to
// SynthesizeTimeWindows on the pre-loaded table at the same seed. The
// live source shares bucket IDs (hence per-window seeds) with the
// batch path, so arrival timing never touches the bytes. The
// BeforeWindow hook observes every bucket exactly once, in order,
// without changing output — the property the serve layer's
// per-window-key ledger charges through.
func TestLiveFeedEquivalence(t *testing.T) {
	body, schema := sortedTraceCSV(t, 1100)
	table, err := netdpsyn.LoadCSV(strings.NewReader(body), schema)
	if err != nil {
		t.Fatal(err)
	}
	col := table.Column(table.Schema().Index(trace.FieldTS))
	span := (col[len(col)-1]-col[0])/4 + 1
	cfg := netdpsyn.Config{Epsilon: 1.0, UpdateIterations: 4, Seed: 17, Workers: 2}
	syn, err := netdpsyn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var batch []netdpsyn.WindowResult
	if err := syn.SynthesizeTimeWindows(table, span, func(wr netdpsyn.WindowResult) error {
		batch = append(batch, wr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(batch) < 2 {
		t.Fatalf("span %d cut only %d windows — want several", span, len(batch))
	}

	// Cut the table into its buckets and publish them one at a time,
	// each only after the previous window's synthesis was emitted —
	// the strictest live schedule.
	bucketOf := func(ts int64) int64 { return netdpsyn.TimeBucket(ts, span) }
	type cut struct {
		bucket int64
		tab    *netdpsyn.Table
	}
	var cuts []cut
	for lo := 0; lo < table.NumRows(); {
		b := bucketOf(col[lo])
		hi := lo
		for hi < table.NumRows() && bucketOf(col[hi]) == b {
			hi++
		}
		part := netdpsyn.NewTable(schema, hi-lo)
		if err := part.AppendRowRange(table, lo, hi); err != nil {
			t.Fatal(err)
		}
		cuts = append(cuts, cut{bucket: b, tab: part})
		lo = hi
	}
	feed, err := netdpsyn.NewWindowFeed(schema, span)
	if err != nil {
		t.Fatal(err)
	}
	emitted := make(chan struct{})
	go func() {
		for _, c := range cuts {
			if err := feed.Publish(c.bucket, c.tab); err != nil {
				t.Errorf("publish bucket %d: %v", c.bucket, err)
				break
			}
			<-emitted
		}
		feed.Close()
	}()

	var gated []int64
	var live []netdpsyn.WindowResult
	err = syn.SynthesizeSource(feed.Live(), netdpsyn.StreamOptions{
		BeforeWindow: func(bucket int64, rows int) error {
			gated = append(gated, bucket)
			return nil
		},
	}, func(wr netdpsyn.WindowResult) error {
		live = append(live, wr)
		emitted <- struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(live) != len(batch) {
		t.Fatalf("windows: live %d, batch %d", len(live), len(batch))
	}
	if len(gated) != len(cuts) {
		t.Fatalf("BeforeWindow saw %d buckets, want %d", len(gated), len(cuts))
	}
	for i := range gated {
		if gated[i] != cuts[i].bucket {
			t.Fatalf("gate order: %v", gated)
		}
	}
	for i := range batch {
		if batch[i].Window != live[i].Window || batch[i].Records != live[i].Records {
			t.Fatalf("window %d: (%d, %d records) vs (%d, %d records)",
				i, batch[i].Window, batch[i].Records, live[i].Window, live[i].Records)
		}
		identicalTables(t, fmt.Sprintf("live window %d", i), batch[i].Table, live[i].Table)
	}
}

// TestStreamUnsortedRejected: the streaming path refuses a trace that
// is not time-ordered instead of silently cutting non-contiguous
// windows.
func TestStreamUnsortedRejected(t *testing.T) {
	raw, err := datagen.Generate(datagen.UGR16, datagen.Config{Rows: 300, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	// Force a timestamp regression mid-trace.
	tsCol := raw.Schema().Index(trace.FieldTS)
	raw = raw.SortBy(tsCol)
	raw.SetValue(150, tsCol, raw.Value(0, tsCol)-1000)
	var buf bytes.Buffer
	if err := raw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	err = netdpsyn.SynthesizeStream(&buf, netdpsyn.FlowSchema("label"),
		netdpsyn.Config{Epsilon: 1, UpdateIterations: 2, Seed: 1},
		netdpsyn.StreamOptions{WindowRows: 100},
		func(netdpsyn.WindowResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "time-ordered") {
		t.Fatalf("unsorted stream err = %v", err)
	}
}

// traceGen emits a syntactically valid flow CSV of n records row by
// row, so arbitrarily long traces can be streamed into the library
// without the test itself holding the trace.
type traceGen struct {
	n    int
	next int
	buf  bytes.Buffer
}

func newTraceGen(n int) *traceGen {
	g := &traceGen{n: n}
	g.buf.WriteString("srcip,dstip,srcport,dstport,proto,ts,td,pkt,byt,label\n")
	return g
}

func (g *traceGen) Read(p []byte) (int, error) {
	for g.buf.Len() < len(p) && g.next < g.n {
		i := g.next
		proto := "TCP"
		if i%5 == 3 {
			proto = "UDP"
		}
		label := "benign"
		if i%17 == 0 {
			label = "scan"
		}
		fmt.Fprintf(&g.buf, "10.%d.%d.%d,172.16.%d.%d,%d,%d,%s,%d,%d,%d,%d,%s\n",
			(i/7)%200, (i/3)%250, i%250, (i/11)%250, (i*13)%250,
			1024+(i*7)%50000, []int{80, 443, 53, 22}[i%4], proto,
			1_000_000+int64(i), // ts: strictly increasing
			10+(i%900), 1+(i%40), 64+(i*97)%9000, label)
		g.next++
	}
	if g.buf.Len() == 0 {
		return 0, io.EOF
	}
	return g.buf.Read(p)
}

// liveHeap forces a collection and returns the live heap.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestStreamBoundedMemory is the acceptance criterion for the
// streaming path: synthesizing a trace many times larger than the
// window size keeps the live heap bounded by the window working set —
// demonstrably below what merely LOADING the full trace costs — so
// trace length is limited by the input medium, not RAM.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-heap walk is slow; skipped in -short")
	}
	if raceEnabled {
		t.Skip("heap accounting is distorted under the race detector")
	}
	const (
		rows       = 192_000
		windowRows = 1_500 // trace is 128× the window size
	)
	schema := netdpsyn.FlowSchema("label")

	// Reference cost: the full trace materialized the way the batch
	// path would hold it.
	base := liveHeap()
	full, err := netdpsyn.LoadCSV(newTraceGen(rows), schema)
	if err != nil {
		t.Fatal(err)
	}
	fullLive := int64(liveHeap() - base)
	if full.NumRows() != rows {
		t.Fatalf("generator produced %d rows", full.NumRows())
	}
	runtime.KeepAlive(full)
	full = nil
	if fullLive < 12<<20 {
		t.Fatalf("full-trace live heap only %d bytes — trace too small for a meaningful bound", fullLive)
	}

	cfg := netdpsyn.Config{Epsilon: 1.0, UpdateIterations: 2, Seed: 3, Workers: 2}
	base = liveHeap()
	var peak int64
	windows := 0
	synthesized := 0
	err = netdpsyn.SynthesizeStream(newTraceGen(rows), schema, cfg,
		netdpsyn.StreamOptions{WindowRows: windowRows},
		func(wr netdpsyn.WindowResult) error {
			windows++
			synthesized += wr.Records
			if live := int64(liveHeap()) - int64(base); live > peak {
				peak = live
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if windows != rows/windowRows {
		t.Fatalf("windows = %d, want %d", windows, rows/windowRows)
	}
	if synthesized == 0 {
		t.Fatal("no records synthesized")
	}
	// The streaming walk must stay well under the cost of even just
	// loading the trace (the batch path additionally encodes it and
	// holds the synthesis output). /2 leaves room for per-window
	// transients while still proving the full trace was never held.
	if peak > fullLive/2 {
		t.Fatalf("streaming live heap peaked at %d bytes — not bounded (loading the full trace costs %d)", peak, fullLive)
	}
	t.Logf("rows=%d windowRows=%d: full-load live=%dKiB, streaming peak=%dKiB", rows, windowRows, fullLive>>10, peak>>10)
}
