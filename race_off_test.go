//go:build !race

package netdpsyn_test

// raceEnabled reports whether the race detector is on; the bounded
// live-heap assertion is skipped under it (shadow memory and altered
// allocation patterns make HeapAlloc meaningless there).
const raceEnabled = false
